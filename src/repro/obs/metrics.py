"""Process-wide metrics: counters, gauges, streaming histograms.

The registry replaces every ad-hoc tally the serving stack grew — most
importantly :class:`~repro.serve.session.InferenceSession`'s trimmed
``_latencies`` list, which both raced its own ``stats()`` reader and
could only answer quantile questions over the last N samples.  A
:class:`Histogram` here is a fixed set of bucket counters plus exact
``count/sum/min/max``: constant memory, lock-guarded increments, and
streaming p50/p95/p99 via
:func:`repro.obs.quantiles.histogram_quantile`.

Exposition is Prometheus text format (``# HELP`` / ``# TYPE`` / sample
lines, histograms as cumulative ``_bucket{le=...}`` series) — what
``session.metrics_text()`` and ``repro serve --metrics-file`` emit, and
what the planned asyncio front-end will serve on ``/metrics``.

Instruments are cheap to re-look-up: ``registry.counter(name, labels)``
returns the same object for the same key, so hot paths can also cache
the instrument once and call ``.inc()`` forever after.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .quantiles import histogram_quantile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "global_registry",
]

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds, in seconds: 100us .. ~105s in
#: half-decade steps.  Wide enough for cold-start outliers, fine enough
#: that interpolated p50/p95 land within a bucket of the truth.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    1e-4 * (math.sqrt(10.0) ** i) for i in range(12)
)


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(pairs: LabelPairs, extra: str = "") -> str:
    parts = [f'{key}="{_escape(value)}"' for key, value in pairs]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing count.  ``inc()`` is lock-guarded."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the count — for ``reset_stats()`` surfaces, not scrapers."""
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, inflight requests)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket streaming histogram with exact count/sum/min/max.

    ``observe()`` is O(log buckets) (bisect over the bounds) under a
    lock; quantiles are estimated from the bucket counts without any
    stored samples, clamped to the exact observed envelope.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        bounds: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # Bisect over the (immutable) bounds happens outside the lock.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> Dict[str, object]:
        """A consistent copy of the histogram state (counts + envelope)."""
        with self._lock:
            return {
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
            }

    def percentile(self, pct: float) -> float:
        """Streaming percentile estimate in the observed unit (``pct`` 0-100)."""
        snap = self.snapshot()
        if not snap["count"]:
            return 0.0
        return histogram_quantile(
            self.bounds,
            snap["counts"],  # type: ignore[arg-type]
            pct / 100.0,
            minimum=snap["min"],  # type: ignore[arg-type]
            maximum=snap["max"],  # type: ignore[arg-type]
        )

    def mean(self) -> float:
        snap = self.snapshot()
        count = snap["count"]
        return (snap["sum"] / count) if count else 0.0  # type: ignore[operator]

    def reset(self) -> None:
        """Zero counts and envelope — for ``reset_stats()`` surfaces."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


class MetricsRegistry:
    """Keyed store of instruments; one process-wide instance by default.

    Instruments are identified by ``(name, sorted label pairs)``;
    re-registering the same key returns the existing instrument, so
    every layer can ask for "its" counter without coordination.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelPairs], object] = {}
        self._help: Dict[str, str] = {}

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        bounds: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        key = (name, _freeze_labels(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(name, key[1], bounds)
                self._instruments[key] = instrument
                if help:
                    self._help.setdefault(name, help)
            elif not isinstance(instrument, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def _get_or_create(self, cls, name, labels, help):
        key = (name, _freeze_labels(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1])
                self._instruments[key] = instrument
                if help:
                    self._help.setdefault(name, help)
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def instruments(self) -> List[object]:
        with self._lock:
            return list(self._instruments.values())

    def remove(self, name: str, labels: Optional[Mapping[str, str]] = None) -> None:
        """Drop one instrument (sessions unregister their series on close)."""
        key = (name, _freeze_labels(labels))
        with self._lock:
            self._instruments.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._help.clear()

    def expose_text(self) -> str:
        """Prometheus text exposition of every registered instrument."""
        with self._lock:
            items = list(self._instruments.items())
            help_lines = dict(self._help)

        by_name: Dict[str, List[Tuple[LabelPairs, object]]] = {}
        for (name, labels), instrument in items:
            by_name.setdefault(name, []).append((labels, instrument))

        lines: List[str] = []
        for name in sorted(by_name):
            series = by_name[name]
            kind = series[0][1]
            if isinstance(kind, Counter):
                type_name = "counter"
            elif isinstance(kind, Gauge):
                type_name = "gauge"
            else:
                type_name = "histogram"
            if name in help_lines:
                lines.append(f"# HELP {name} {help_lines[name]}")
            lines.append(f"# TYPE {name} {type_name}")
            for labels, instrument in series:
                if isinstance(instrument, (Counter, Gauge)):
                    lines.append(
                        f"{name}{_format_labels(labels)} "
                        f"{_format_value(instrument.value)}"
                    )
                else:
                    assert isinstance(instrument, Histogram)
                    snap = instrument.snapshot()
                    cumulative = 0
                    counts: Iterable[int] = snap["counts"]  # type: ignore[assignment]
                    for bound, count in zip(
                        list(instrument.bounds) + [math.inf], counts
                    ):
                        cumulative += count
                        le = _format_labels(
                            labels, f'le="{_format_value(bound)}"'
                        )
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    suffix = _format_labels(labels)
                    lines.append(
                        f"{name}_sum{suffix} {_format_value(snap['sum'])}"  # type: ignore[arg-type]
                    )
                    lines.append(f"{name}_count{suffix} {snap['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


_global = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry every layer records into by default."""
    return _global
