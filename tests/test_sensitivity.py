"""Unit tests for block sensitivity analysis (Sec. IV-B, Fig. 3)."""

import pytest

from repro.core.pruning import PruningConfig, instrument_model
from repro.core.sensitivity import SensitivityResult, block_sensitivity, suggest_upper_bounds
from repro.core.training import fit
from repro.models import VGG


@pytest.fixture(scope="module")
def trained_handle(tiny_dataset):
    from repro.nn.data import DataLoader

    train, _ = tiny_dataset.splits()
    train_loader = DataLoader(train, batch_size=16, shuffle=True, seed=3)
    model = VGG(num_classes=4, width_multiplier=0.06, seed=0)
    fit(model, train_loader, epochs=6, lr=0.05)
    return instrument_model(model, PruningConfig.disabled(model.num_blocks))


class TestBlockSensitivity:
    def test_curve_structure(self, trained_handle, tiny_loaders):
        _, test_loader = tiny_loaders
        result = block_sensitivity(trained_handle, test_loader, ratios=[0.2, 0.6], dimension="channel")
        assert set(result.curves) == {0, 1, 2, 3, 4}
        for curve in result.curves.values():
            assert [r for r, _ in curve] == [0.2, 0.6]
            assert all(0.0 <= acc <= 1.0 for _, acc in curve)

    def test_restores_disabled_state(self, trained_handle, tiny_loaders):
        _, test_loader = tiny_loaders
        block_sensitivity(trained_handle, test_loader, ratios=[0.5], dimension="channel")
        for _, pruner in trained_handle.pruners:
            assert pruner.channel_ratio == 0.0
            assert pruner.spatial_ratio == 0.0

    def test_baseline_accuracy_recorded(self, trained_handle, tiny_loaders):
        _, test_loader = tiny_loaders
        result = block_sensitivity(trained_handle, test_loader, ratios=[0.3], dimension="spatial")
        assert result.baseline_accuracy > 0.5
        assert result.dimension == "spatial"

    def test_accuracy_degrades_with_ratio(self, trained_handle, tiny_loaders):
        # Monotone-ish degradation: max over blocks at low ratio >= at 0.95.
        _, test_loader = tiny_loaders
        result = block_sensitivity(
            trained_handle, test_loader, ratios=[0.1, 0.95], dimension="channel"
        )
        low = max(result.accuracy_at(b, 0.1) for b in result.curves)
        high = min(result.accuracy_at(b, 0.95) for b in result.curves)
        assert low >= high

    def test_invalid_dimension(self, trained_handle, tiny_loaders):
        _, test_loader = tiny_loaders
        with pytest.raises(ValueError):
            block_sensitivity(trained_handle, test_loader, ratios=[0.5], dimension="depth")

    def test_accuracy_at_missing_ratio(self, trained_handle, tiny_loaders):
        _, test_loader = tiny_loaders
        result = block_sensitivity(trained_handle, test_loader, ratios=[0.5], dimension="channel")
        with pytest.raises(KeyError):
            result.accuracy_at(0, 0.123)


class TestSuggestUpperBounds:
    def _result(self):
        return SensitivityResult(
            dimension="channel",
            baseline_accuracy=0.9,
            curves={
                0: [(0.2, 0.89), (0.5, 0.85), (0.8, 0.4)],
                1: [(0.2, 0.9), (0.5, 0.89), (0.8, 0.88)],
                2: [(0.2, 0.5), (0.5, 0.3), (0.8, 0.2)],
            },
        )

    def test_picks_largest_tolerated(self):
        bounds = suggest_upper_bounds(self._result(), max_drop=0.05)
        assert bounds == [0.5, 0.8, 0.0]

    def test_zero_tolerance(self):
        # Only accuracies >= the 0.9 baseline survive: block 1 at ratio 0.2.
        bounds = suggest_upper_bounds(self._result(), max_drop=0.0)
        assert bounds == [0.0, 0.2, 0.0]

    def test_everything_tolerated(self):
        bounds = suggest_upper_bounds(self._result(), max_drop=1.0)
        assert bounds == [0.8, 0.8, 0.8]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            suggest_upper_bounds(self._result(), max_drop=-0.1)

    def test_later_blocks_more_tolerant_on_trained_vgg(self, trained_handle, tiny_loaders):
        # Fig. 3's qualitative claim: deep VGG blocks tolerate much higher
        # channel-pruning ratios than early blocks.
        _, test_loader = tiny_loaders
        result = block_sensitivity(
            trained_handle, test_loader, ratios=[0.3, 0.6, 0.9], dimension="channel"
        )
        bounds = suggest_upper_bounds(result, max_drop=0.15)
        assert bounds[4] >= bounds[0]
