"""Learning-rate schedules.

The paper uses cosine learning-rate decay (0.1 → 0) for all TTD training
runs, citing SGDR [17]; :class:`CosineAnnealingLR` reproduces that schedule.
"""

from __future__ import annotations

import math

from .optimizers import Optimizer

__all__ = ["LRScheduler", "CosineAnnealingLR", "StepLR", "LinearWarmup"]


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch (or per iteration)."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.last_epoch += 1
        self.optimizer.lr = self.get_lr()


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` steps [17]."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.last_epoch, self.t_max)
        cos = (1.0 + math.cos(math.pi * t / self.t_max)) / 2.0
        return self.eta_min + (self.base_lr - self.eta_min) * cos


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.last_epoch // self.step_size))


class LinearWarmup(LRScheduler):
    """Linear ramp from ``start_factor * base_lr`` to ``base_lr``, then flat."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, start_factor: float = 0.1):
        super().__init__(optimizer)
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        self.warmup_steps = warmup_steps
        self.start_factor = start_factor

    def get_lr(self) -> float:
        if self.last_epoch >= self.warmup_steps:
            return self.base_lr
        frac = self.last_epoch / self.warmup_steps
        return self.base_lr * (self.start_factor + (1.0 - self.start_factor) * frac)
