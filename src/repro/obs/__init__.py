"""``repro.obs``: zero-dependency observability for the serving stack.

Three pillars, one spine:

* :mod:`~repro.obs.trace` — per-request spans (``queue_wait``,
  ``window_assembly``, ``engine_execute``, per-conv ``kernel``,
  ``escalation``) collected by a process-wide :class:`Tracer`,
  propagated across threads, the procpool pipe, and cascade stage hops;
  exported as Chrome trace-event JSON.
* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket streaming histograms with Prometheus text
  exposition; every ``stats()`` surface is now a view over it.
* :mod:`~repro.obs.profile` — the opt-in per-op :class:`PlanProfiler`
  (wall time + bytes moved per geometry) behind ``bench-* --profile``.

:mod:`~repro.obs.runtime` holds the single module-level ``enabled``
flag; with no tracer installed every hot-path hook is one attribute
read, and no execution path ever changes — observability watches the
numbers, it never touches them.
"""

from . import runtime
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    global_registry,
)
from .profile import PlanProfiler, format_profile_table, merge_profiles
from .quantiles import histogram_quantile, latency_summary_ms, median, quantile
from .trace import (
    SpanRecord,
    TraceContext,
    Tracer,
    chrome_trace_events,
    trace_coverage,
)

__all__ = [
    "runtime",
    "Tracer",
    "TraceContext",
    "SpanRecord",
    "chrome_trace_events",
    "trace_coverage",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "global_registry",
    "PlanProfiler",
    "merge_profiles",
    "format_profile_table",
    "quantile",
    "median",
    "latency_summary_ms",
    "histogram_quantile",
]
