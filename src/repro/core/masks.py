"""Binary pruning masks from attention coefficients (Eqs. 3-4).

The paper keeps the top-k scored components, with ``k = int(p * total)``
where ``p`` is the *reserved* percentage.  Everything in this repo is
parameterized by the complementary **pruning ratio** ``r = 1 - p`` because
that is what the paper's tables report (e.g. per-block channel ratios
``[0.2, 0.2, 0.6, 0.9, 0.9]``).
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

__all__ = [
    "reserved_count",
    "topk_mask",
    "channel_mask",
    "spatial_mask",
    "keep_fraction",
    "threshold_mask",
    "threshold_channel_mask",
    "threshold_spatial_mask",
    "batch_union",
    "MaskSpec",
    "kept_counts",
    "quantize_kept_count",
    "group_by_kept_count",
    "output_grid_mask",
    "spatial_mask_signature",
]


def reserved_count(total: int, prune_ratio: float) -> int:
    """Number of components kept for a given pruning ratio.

    Implements ``k = int(p * total)`` from Eq. 3 with ``p = 1 - prune_ratio``,
    clamped so at least one component always survives (a fully-masked feature
    map would zero the forward signal entirely).
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0.0 <= prune_ratio <= 1.0:
        raise ValueError(f"prune ratio must be in [0, 1], got {prune_ratio}")
    return max(1, int((1.0 - prune_ratio) * total))


def topk_mask(scores: np.ndarray, k: int) -> np.ndarray:
    """Row-wise boolean mask keeping the ``k`` largest entries.

    ``scores`` has shape ``(N, M)``; ties are broken by index order
    (``argpartition``), which matches the deterministic behaviour of
    ``torch.topk`` closely enough for the algorithms here.
    """
    n, m = scores.shape
    if not 1 <= k <= m:
        raise ValueError(f"k={k} out of range for {m} components")
    mask = np.zeros((n, m), dtype=bool)
    if k == m:
        mask[:] = True
        return mask
    # argpartition puts the k largest (unordered) in the last k slots.
    top_idx = np.argpartition(scores, m - k, axis=1)[:, m - k :]
    np.put_along_axis(mask, top_idx, True, axis=1)
    return mask


def channel_mask(channel_scores: np.ndarray, prune_ratio: float) -> np.ndarray:
    """Eq. 3: per-input binary channel mask.

    Parameters
    ----------
    channel_scores:
        ``(N, C)`` attention coefficients.
    prune_ratio:
        Fraction of channels removed.

    Returns
    -------
    Boolean array of shape ``(N, C)``.
    """
    n, c = channel_scores.shape
    return topk_mask(channel_scores, reserved_count(c, prune_ratio))


def spatial_mask(spatial_scores: np.ndarray, prune_ratio: float) -> np.ndarray:
    """Eq. 4: per-input binary spatial column mask.

    Parameters
    ----------
    spatial_scores:
        ``(N, H, W)`` attention heat maps.
    prune_ratio:
        Fraction of spatial columns removed.

    Returns
    -------
    Boolean array of shape ``(N, H, W)``.
    """
    n, h, w = spatial_scores.shape
    flat = spatial_scores.reshape(n, h * w)
    k = reserved_count(h * w, prune_ratio)
    return topk_mask(flat, k).reshape(n, h, w)


def keep_fraction(mask: np.ndarray) -> float:
    """Mean kept fraction of a boolean mask (per batch)."""
    return float(mask.mean())


# ----------------------------------------------------------------------
# Extensions beyond the paper's Eq. 3/4 top-k rule
# ----------------------------------------------------------------------
def threshold_mask(scores: np.ndarray, threshold: float) -> np.ndarray:
    """Row-wise mask keeping entries with score strictly above ``threshold``.

    An *input-adaptive* alternative to the paper's fixed top-k: easy inputs
    (few strongly-activated components) get more pruning than hard ones, so
    the keep fraction — and hence the per-input FLOPs — varies.  Rows where
    nothing clears the threshold keep their single best entry, preserving
    the at-least-one invariant of :func:`reserved_count`.
    """
    if scores.ndim != 2:
        raise ValueError("scores must be 2-D (rows = batch)")
    mask = scores > threshold
    empty = ~mask.any(axis=1)
    if empty.any():
        best = scores[empty].argmax(axis=1)
        mask[np.flatnonzero(empty), best] = True
    return mask


def threshold_channel_mask(channel_scores: np.ndarray, threshold: float) -> np.ndarray:
    """Threshold variant of Eq. 3 over ``(N, C)`` channel attention."""
    return threshold_mask(channel_scores, threshold)


def threshold_spatial_mask(spatial_scores: np.ndarray, threshold: float) -> np.ndarray:
    """Threshold variant of Eq. 4 over ``(N, H, W)`` spatial attention."""
    n, h, w = spatial_scores.shape
    return threshold_mask(spatial_scores.reshape(n, h * w), threshold).reshape(n, h, w)


# ----------------------------------------------------------------------
# MaskSpec: one description for both mask-building rules
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class MaskSpec:
    """How a pruning site turns attention scores into a binary mask.

    Unifies the paper's fixed top-k rule (``mode="topk"``: every sample
    keeps ``reserved_count(total, ratio)`` components) and the adaptive
    threshold rule (``mode="threshold"``: components scoring strictly above
    ``threshold`` survive, so the kept *count* varies per sample).  The
    distinction matters operationally: top-k masks have one kept-count per
    batch and stack into equal-shape GEMMs, threshold masks are **ragged**
    and need kept-count bucketing (:func:`group_by_kept_count`) to batch.

    Attributes
    ----------
    mode:
        ``"topk"`` (Eqs. 3-4) or ``"threshold"`` (adaptive extension).
    ratio:
        Pruning ratio for top-k mode.  In threshold mode the ratio is only
        an on/off switch at the pruning site; it does not shape the mask.
    threshold:
        Score cut-off for threshold mode (ignored by top-k).
    """

    mode: str = "topk"
    ratio: float = 0.0
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("topk", "threshold"):
            raise ValueError(f"mode must be 'topk' or 'threshold', got {self.mode!r}")
        if not 0.0 <= self.ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {self.ratio}")

    @property
    def adaptive(self) -> bool:
        """Whether per-sample kept-counts can differ (ragged execution)."""
        return self.mode == "threshold"

    def build(self, scores: np.ndarray) -> np.ndarray:
        """Row-wise boolean mask over ``(N, M)`` scores."""
        if self.mode == "topk":
            return topk_mask(scores, reserved_count(scores.shape[1], self.ratio))
        return threshold_mask(scores, self.threshold)

    def build_spatial(self, scores: np.ndarray) -> np.ndarray:
        """Mask over ``(N, H, W)`` spatial scores (flattened internally)."""
        n, h, w = scores.shape
        return self.build(scores.reshape(n, h * w)).reshape(n, h, w)

    def signature(self) -> Tuple[str, float]:
        """Hashable identity of the rule (for plan/bucket cache keys)."""
        if self.mode == "topk":
            return ("topk", self.ratio)
        return ("threshold", self.threshold)


def kept_counts(mask: np.ndarray) -> np.ndarray:
    """Per-sample kept component counts of a ``(N, ...)`` boolean mask.

    Trailing dimensions are flattened, so the same helper counts kept
    *channels* of an ``(N, C)`` mask and kept *positions* of an
    ``(N, H, W)`` spatial mask — which is what lets
    :func:`group_by_kept_count` bucket both axes identically.
    """
    mask = np.asarray(mask, dtype=bool)
    return mask.reshape(mask.shape[0], -1).sum(axis=1).astype(np.int64)


def output_grid_mask(
    mask: np.ndarray, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    """Subsample an ``(N, H, W)`` spatial mask onto a conv's output grid.

    A spatial mask is defined at input resolution (Eq. 4); a strided
    convolution only ever *writes* output positions whose top-left input
    coordinate survives, so the execution engine works on the
    ``(N, out_h, out_w)`` restriction.  Returned as a strided view (no
    copy) — flatten or pass it straight to :func:`kept_counts` /
    :func:`group_by_kept_count` for kept-position bucketing.
    """
    if mask.ndim != 3:
        raise ValueError(f"spatial mask must be (N, H, W), got shape {mask.shape}")
    return mask[:, ::stride, ::stride][:, :out_h, :out_w]


def spatial_mask_signature(mask: np.ndarray) -> bytes:
    """Hashable packed-bit identity of one sample's spatial mask.

    The 2-D twin of the channel-mask signatures the grouped executor keys
    on: equal signatures ⇔ equal kept-position sets, so combined
    channel×spatial grouping can reuse the same dictionary machinery.
    """
    mask = np.asarray(mask, dtype=bool)
    return np.packbits(mask.reshape(-1)).tobytes()


def quantize_kept_count(count: int, total: int, quantum: int = 4) -> int:
    """Round a kept-count up to the next bucket boundary.

    Ragged batches are executed one padded GEMM per *bucket*; quantizing
    counts up to multiples of ``quantum`` (clamped to ``total``) trades a
    bounded amount of zero-padded work for far fewer distinct GEMM shapes
    — which is also what keeps workspace-arena buffers reusable across
    calls instead of re-growing for every novel count.  ``0`` stays ``0``
    (an all-dropped sample computes nothing).
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if quantum < 1:
        raise ValueError("quantum must be >= 1")
    if count <= 0:
        return 0
    return min(int(total), -(-int(count) // quantum) * quantum)


def group_by_kept_count(
    mask: np.ndarray, quantum: int = 4
) -> List[Tuple[int, np.ndarray]]:
    """Partition batch rows into quantized kept-count buckets.

    Returns ``(bucket_count, sample_indices)`` pairs sorted by bucket
    count ascending.  Every sample lands in exactly one bucket; the bucket
    count is :func:`quantize_kept_count` of the row's kept-count, so a
    sample's bucket depends only on its *own* mask — the property that
    makes bucketed execution batch-invariant.
    """
    mask = np.asarray(mask, dtype=bool)
    counts = kept_counts(mask)
    total = int(mask.reshape(mask.shape[0], -1).shape[1])
    quantized = np.array(
        [quantize_kept_count(int(c), total, quantum) for c in counts], dtype=np.int64
    )
    buckets: List[Tuple[int, np.ndarray]] = []
    for value in np.unique(quantized):
        buckets.append((int(value), np.flatnonzero(quantized == value)))
    return buckets


def batch_union(mask: np.ndarray) -> np.ndarray:
    """Broadcast the union of per-input masks to the whole batch.

    Per-input masks defeat batched dense kernels (every sample selects
    different channels).  The batch-union relaxation keeps a component if
    *any* sample in the batch needs it — a strictly larger mask (less
    saving) that permits one gather per batch.  Masks of shape ``(N, ...)``
    come back with the same shape, every row identical.
    """
    union = mask.any(axis=0, keepdims=True)
    return np.broadcast_to(union, mask.shape)
