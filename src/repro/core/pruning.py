"""Dynamic feature-map pruning layers and model instrumentation (Sec. III).

:class:`DynamicPruning` is the layer Fig. 1 inserts between consecutive
convolutions.  On every forward pass it recomputes channel and spatial
attention for the *current* input, builds the binarized top-k masks
(Eqs. 3-4) and multiplies them onto the feature map (Eq. 5).  The same layer
serves both phases of the paper:

* **testing phase** — per-input dynamic pruning (Sec. III-B);
* **training phase** — the targeted-dropout layer of TTD (Sec. IV-A), which
  is the identical masking with regular back-propagation through the kept
  entries.

Numerically the masked feature map is equivalent to skipping the pruned
channels/columns in the next convolution (zeroed channels contribute zero
to every output).  The computation saving is therefore *accounted
analytically* from the recorded masks by :mod:`repro.core.flops`, exactly
as the paper reports FLOPs reductions.

:func:`instrument_model` wraps every pruning point the model declares
(:meth:`~repro.models.base.PrunableModel.pruning_points`) and returns a
handle exposing the inserted pruners for ratio control and statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.base import PrunableModel, PruningPoint
from ..nn import Module, Sequential
from ..nn import functional as F
from ..nn.tensor import Tensor
from .attention import make_criterion
from .masks import MaskSpec, batch_union

__all__ = [
    "DynamicPruning",
    "PruningConfig",
    "InstrumentedModel",
    "instrument_model",
    "pooled_keep_fraction",
    "calibrate_thresholds",
]


def pooled_keep_fraction(mask: np.ndarray, pool_factor: int) -> float:
    """Kept fraction of a spatial mask after max-pooling by ``pool_factor``.

    When a pooling layer sits between the pruned feature map and the next
    convolution (VGG block boundaries), a pooled output column must still be
    computed if *any* column in its pooling window survived.  This is the
    fraction that scales the next layer's FLOPs.
    """
    if pool_factor <= 1:
        return float(mask.mean())
    n, h, w = mask.shape
    ph, pw = h // pool_factor, w // pool_factor
    if ph == 0 or pw == 0:
        return float(mask.mean())
    trimmed = mask[:, : ph * pool_factor, : pw * pool_factor]
    windows = trimmed.reshape(n, ph, pool_factor, pw, pool_factor)
    pooled = windows.any(axis=(2, 4))
    return float(pooled.mean())


class DynamicPruning(Module):
    """Attention-based dynamic channel + spatial column pruning layer.

    Parameters
    ----------
    channel_ratio:
        Fraction of channels pruned per input (0 disables channel pruning).
    spatial_ratio:
        Fraction of spatial columns pruned per input (0 disables).
    criterion:
        ``"attention"`` (paper), ``"random"`` or ``"inverse"`` (controls).
    pool_between:
        Downsampling factor between this site and the next convolution;
        used when accumulating effective spatial keep fractions.
    seed:
        Seed for the random-criterion generator.
    mask_mode:
        ``"topk"`` (the paper's Eq. 3/4) or ``"threshold"`` — an extension
        where components scoring above ``threshold`` survive, so the keep
        fraction adapts per input (easy inputs prune harder).
    threshold:
        Attention cut-off for ``mask_mode="threshold"`` (post-ReLU
        attention is non-negative, so 0.0 keeps everything activated).
    granularity:
        ``"input"`` (per-input masks, the paper) or ``"batch"`` — the
        union of the batch's masks, identical for every sample; keeps more
        (saves less) but admits batched dense kernels at deployment.

    Attributes
    ----------
    enabled:
        Master switch; a disabled layer is an identity (used to measure the
        unpruned baseline on the same instrumented model).
    last_channel_mask / last_spatial_mask:
        Masks from the most recent forward pass (or ``None``).
    """

    def __init__(
        self,
        channel_ratio: float = 0.0,
        spatial_ratio: float = 0.0,
        criterion: str = "attention",
        pool_between: int = 1,
        seed: Optional[int] = None,
        mask_mode: str = "topk",
        threshold: float = 0.0,
        granularity: str = "input",
    ):
        super().__init__()
        if mask_mode not in ("topk", "threshold"):
            raise ValueError(f"mask_mode must be 'topk' or 'threshold', got {mask_mode!r}")
        if granularity not in ("input", "batch"):
            raise ValueError(f"granularity must be 'input' or 'batch', got {granularity!r}")
        self.set_ratios(channel_ratio, spatial_ratio)
        self.criterion_name = criterion
        self.criterion_seed = seed
        self._score = make_criterion(criterion, np.random.default_rng(seed))
        self.pool_between = pool_between
        self.mask_mode = mask_mode
        self.threshold = float(threshold)
        self.granularity = granularity
        self.enabled = True
        self.last_channel_mask: Optional[np.ndarray] = None
        self.last_spatial_mask: Optional[np.ndarray] = None
        self.reset_stats()

    # ------------------------------------------------------------------
    def set_ratios(self, channel_ratio: float, spatial_ratio: float) -> None:
        for name, value in (("channel", channel_ratio), ("spatial", spatial_ratio)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} prune ratio must be in [0, 1], got {value}")
        self.channel_ratio = float(channel_ratio)
        self.spatial_ratio = float(spatial_ratio)

    def set_criterion(self, criterion: str, seed: Optional[int] = None) -> None:
        self.criterion_name = criterion
        self.criterion_seed = seed
        self._score = make_criterion(criterion, np.random.default_rng(seed))

    def reset_stats(self) -> None:
        """Clear the accumulated keep-fraction statistics."""
        self._samples = 0
        self._channel_keep_sum = 0.0
        self._spatial_keep_sum = 0.0
        self._spatial_keep_pooled_sum = 0.0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the layer prunes.

        In ``threshold`` mode the ratios act purely as per-dimension on/off
        switches (the cut-off, not the ratio, decides how much survives).
        """
        return self.enabled and (self.channel_ratio > 0.0 or self.spatial_ratio > 0.0)

    @property
    def adaptive(self) -> bool:
        """Whether this site produces ragged (per-input kept-count) masks."""
        return self.mask_mode == "threshold"

    def mask_spec(self, dimension: str) -> MaskSpec:
        """The :class:`~repro.core.masks.MaskSpec` for one mask dimension."""
        if dimension not in ("channel", "spatial"):
            raise ValueError("dimension must be 'channel' or 'spatial'")
        ratio = self.channel_ratio if dimension == "channel" else self.spatial_ratio
        return MaskSpec(self.mask_mode, ratio, self.threshold)

    def compute_masks(
        self, fm: np.ndarray, update_stats: bool = True
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Score a raw feature map and build the binary masks (Eqs. 3-4).

        Shared by the dense training/verification path (:meth:`forward`) and
        the sparse inference engine (:mod:`repro.core.sparse_exec`), so both
        apply identical mask semantics — including ``threshold`` mode and
        ``batch`` granularity.  Returns ``(channel_mask, spatial_mask)``
        where either entry is ``None`` when that dimension is unpruned.
        """
        n = fm.shape[0]
        ch_scores, sp_scores = self._score(fm)

        cm: Optional[np.ndarray] = None
        sm: Optional[np.ndarray] = None
        ch_keep = 1.0
        sp_keep = 1.0
        sp_keep_pooled = 1.0
        if self.channel_ratio > 0.0:
            cm = self.mask_spec("channel").build(ch_scores)
            if self.granularity == "batch":
                cm = batch_union(cm)
            ch_keep = cm.mean()
        self.last_channel_mask = cm
        if self.spatial_ratio > 0.0:
            sm = self.mask_spec("spatial").build_spatial(sp_scores)
            if self.granularity == "batch":
                sm = batch_union(sm)
            sp_keep = sm.mean()
            sp_keep_pooled = pooled_keep_fraction(sm, self.pool_between)
        self.last_spatial_mask = sm

        if update_stats:
            self._samples += n
            self._channel_keep_sum += float(ch_keep) * n
            self._spatial_keep_sum += float(sp_keep) * n
            self._spatial_keep_pooled_sum += float(sp_keep_pooled) * n
        return cm, sm

    def forward(self, x: Tensor) -> Tensor:
        if not self.active:
            return x
        fm = x.data
        cm, sm = self.compute_masks(fm)

        mask = None
        if cm is not None:
            mask = cm[:, :, None, None].astype(fm.dtype)
        if sm is not None:
            sp_broadcast = sm[:, None, :, :].astype(fm.dtype)
            mask = sp_broadcast if mask is None else mask * sp_broadcast
        return F.apply_mask(x, mask)

    # ------------------------------------------------------------------
    @property
    def mean_channel_keep(self) -> float:
        """Average kept channel fraction over recorded samples."""
        return self._channel_keep_sum / self._samples if self._samples else 1.0

    @property
    def mean_spatial_keep(self) -> float:
        """Average kept spatial-column fraction over recorded samples."""
        return self._spatial_keep_sum / self._samples if self._samples else 1.0

    @property
    def mean_spatial_keep_pooled(self) -> float:
        """Average kept fraction after the intervening pooling (FLOPs basis)."""
        return self._spatial_keep_pooled_sum / self._samples if self._samples else 1.0

    def __repr__(self) -> str:
        return (
            f"DynamicPruning(channel={self.channel_ratio}, spatial={self.spatial_ratio}, "
            f"criterion={self.criterion_name!r})"
        )


@dataclasses.dataclass
class PruningConfig:
    """Per-block dynamic pruning configuration (the paper's ratio vectors).

    ``channel_ratios[b]`` / ``spatial_ratios[b]`` give the pruning ratio for
    every site in block ``b``.  Vectors shorter than the model's block count
    are rejected to avoid silently unpruned blocks.
    """

    channel_ratios: Sequence[float]
    spatial_ratios: Sequence[float]
    criterion: str = "attention"
    seed: Optional[int] = 0

    def validate(self, num_blocks: int) -> None:
        for name, ratios in (("channel", self.channel_ratios), ("spatial", self.spatial_ratios)):
            if len(ratios) != num_blocks:
                raise ValueError(
                    f"{name}_ratios has {len(ratios)} entries but the model has {num_blocks} blocks"
                )
            for r in ratios:
                if not 0.0 <= r <= 1.0:
                    raise ValueError(f"{name} ratio {r} outside [0, 1]")

    @staticmethod
    def disabled(num_blocks: int) -> "PruningConfig":
        return PruningConfig([0.0] * num_blocks, [0.0] * num_blocks)


class InstrumentedModel:
    """A model with dynamic-pruning layers inserted at its pruning points.

    Wraps the underlying :class:`~repro.models.base.PrunableModel` and the
    inserted :class:`DynamicPruning` layers, providing ratio control,
    statistics collection and enable/disable switching for baseline
    measurements on identical weights.
    """

    def __init__(self, model: PrunableModel, pruners: List[Tuple[PruningPoint, DynamicPruning]]):
        self.model = model
        self.pruners = pruners

    def __call__(self, x: Tensor) -> Tensor:
        return self.model(x)

    # ------------------------------------------------------------------
    def set_block_ratios(
        self,
        channel_ratios: Sequence[float],
        spatial_ratios: Sequence[float],
    ) -> None:
        """Apply per-block ratio vectors to every pruner."""
        for point, pruner in self.pruners:
            pruner.set_ratios(channel_ratios[point.block_index], spatial_ratios[point.block_index])

    def set_enabled(self, enabled: bool) -> None:
        for _, pruner in self.pruners:
            pruner.enabled = enabled

    def reset_stats(self) -> None:
        for _, pruner in self.pruners:
            pruner.reset_stats()

    def set_criterion(self, criterion: str, seed: Optional[int] = None) -> None:
        for i, (_, pruner) in enumerate(self.pruners):
            pruner.set_criterion(criterion, None if seed is None else seed + i)

    # ------------------------------------------------------------------
    def pruner_for_block(self, block_index: int) -> List[DynamicPruning]:
        return [p for point, p in self.pruners if point.block_index == block_index]

    def keep_fractions(self) -> Dict[str, Tuple[float, float]]:
        """Recorded (channel, pooled-spatial) keep fractions per site path."""
        return {
            point.path: (pruner.mean_channel_keep, pruner.mean_spatial_keep_pooled)
            for point, pruner in self.pruners
        }

    @property
    def num_blocks(self) -> int:
        return self.model.num_blocks


def calibrate_thresholds(
    instrumented: InstrumentedModel,
    images: np.ndarray,
    fraction: float = 0.6,
) -> Dict[str, float]:
    """Switch every pruner to threshold mode with data-calibrated cut-offs.

    Attention magnitudes differ per layer (deeper maps are flatter), so a
    single global threshold either over- or under-prunes.  This runs one
    calibration batch through the model, records the batch-median channel
    attention at every site, and sets each pruner's threshold to
    ``fraction * median``.  Lower fractions keep more (higher accuracy,
    less saving); see ``benchmarks/test_ablations.py`` for the trade-off.

    Returns the per-site thresholds keyed by pruning-point path.  Pruner
    ratios are left untouched (they act as on/off switches in threshold
    mode); stats are reset so subsequent FLOPs accounting starts clean.
    """
    if fraction <= 0:
        raise ValueError("fraction must be positive")
    from ..nn import Tensor, no_grad

    # Capture per-site medians via temporary score wrappers; pruners must
    # be active for their score function to run.
    saved: List[Tuple[DynamicPruning, object, float, float]] = []
    medians: Dict[int, float] = {}
    for index, (_, pruner) in enumerate(instrumented.pruners):
        original_score = pruner._score
        saved.append((pruner, original_score, pruner.channel_ratio, pruner.spatial_ratio))

        def wrapped(fm, _index=index, _orig=original_score):
            channel_scores, spatial_scores = _orig(fm)
            medians[_index] = float(np.median(channel_scores))
            return channel_scores, spatial_scores

        pruner._score = wrapped
        if not pruner.active:
            # A vanishing ratio activates scoring while keeping everything.
            pruner.set_ratios(max(pruner.channel_ratio, 1e-9), pruner.spatial_ratio)

    try:
        instrumented.model.eval()
        with no_grad():
            instrumented.model(Tensor(np.asarray(images, dtype=np.float32)))
    finally:
        for pruner, original_score, channel_ratio, spatial_ratio in saved:
            pruner._score = original_score
            pruner.set_ratios(channel_ratio, spatial_ratio)

    thresholds: Dict[str, float] = {}
    for index, (point, pruner) in enumerate(instrumented.pruners):
        pruner.mask_mode = "threshold"
        pruner.threshold = fraction * medians.get(index, 0.0)
        thresholds[point.path] = pruner.threshold
    instrumented.reset_stats()
    return thresholds


def instrument_model(
    model: PrunableModel,
    config: Optional[PruningConfig] = None,
) -> InstrumentedModel:
    """Insert a :class:`DynamicPruning` layer at every pruning point.

    Every site module is replaced by ``Sequential(site, DynamicPruning)``;
    calling this twice on the same model raises, since double-wrapped sites
    would prune twice.
    """
    points = model.pruning_points()
    if config is None:
        config = PruningConfig.disabled(model.num_blocks)
    config.validate(model.num_blocks)

    pruners: List[Tuple[PruningPoint, DynamicPruning]] = []
    for i, point in enumerate(points):
        site = model.get_submodule(point.path)
        if isinstance(site, Sequential) and any(
            isinstance(m, DynamicPruning) for m in site.children()
        ):
            raise RuntimeError(f"model already instrumented at {point.path}")
        pruner = DynamicPruning(
            channel_ratio=config.channel_ratios[point.block_index],
            spatial_ratio=config.spatial_ratios[point.block_index],
            criterion=config.criterion,
            pool_between=point.pool_between,
            seed=None if config.seed is None else config.seed + i,
        )
        model.set_submodule(point.path, Sequential(site, pruner))
        pruners.append((point, pruner))
    return InstrumentedModel(model, pruners)
