"""Table I baseline rows: the static methods on the same substrate.

The paper's Table I quotes L1 [8], Taylor [19], GM [20] and FO [21] rows
from the literature; here they are *re-run* on the shared harness (same
model, same data, same FLOPs accounting as the 'Proposed' rows), plus the
dynamic method at the paper's aggressive vector, printed in the paper's
column layout.

Shape claims asserted:

* every static method reaches its ~30-45% reduction band with post-
  fine-tune accuracy above 2.5x chance (the paper's baselines all work);
* the dynamic method sustains a strictly more aggressive ratio vector at
  comparable accuracy — Table I's headline comparison (53.5% vs 34-44%).
"""

import pytest

from repro.analysis.tables import TableRow, format_table
from repro.baselines import StaticFilterPruner
from repro.core.pruning import PruningConfig, instrument_model
from repro.core.training import evaluate
from repro.core.flops import dynamic_flops
from repro.core.ttd import RatioAscentSchedule, TTDTrainer

from .bench_utils import load_vgg

# What the static methods can sustain (FO's published vector rounds to
# roughly this) vs the paper's dynamic vector.
STATIC_RATIOS = [0.2, 0.1, 0.1, 0.45, 0.65]
DYNAMIC_RATIOS = [0.2, 0.2, 0.6, 0.9, 0.9]
ZEROS = [0.0] * 5
FINE_TUNE_EPOCHS = 5


def run_static(method, state, train_loader, test_loader, baseline_acc):
    model = load_vgg(state)
    pruner = StaticFilterPruner(model, method, loader=train_loader)
    result = pruner.apply(STATIC_RATIOS)
    pruner.fine_tune(train_loader, epochs=FINE_TUNE_EPOCHS, lr=0.02)
    accuracy = pruner.evaluate(test_loader).accuracy
    return TableRow(
        "VGG16-slim (synthetic C10)", f"{method.upper()} Pruning",
        100 * baseline_acc, 100 * accuracy,
        result.baseline_flops, result.effective_flops,
    ), result.reduction_pct, accuracy


def run_dynamic(state, train_loader, test_loader, baseline_acc):
    model = load_vgg(state)
    handle = instrument_model(model, PruningConfig.disabled(5))
    trainer = TTDTrainer(
        handle, train_loader, test_loader,
        RatioAscentSchedule(DYNAMIC_RATIOS, warmup=0.1, step=0.25),
        RatioAscentSchedule(ZEROS, warmup=0.1, step=0.25),
        epochs_per_stage=1, final_stage_epochs=FINE_TUNE_EPOCHS + 3, lr=0.02,
    )
    trainer.train()
    handle.set_block_ratios(DYNAMIC_RATIOS, ZEROS)
    handle.reset_stats()
    accuracy = evaluate(model, test_loader).accuracy
    report = dynamic_flops(handle, (3, 32, 32))
    return TableRow(
        "VGG16-slim (synthetic C10)", "Proposed (dynamic)",
        100 * baseline_acc, 100 * accuracy,
        report.baseline_flops, report.effective_flops,
    ), report.reduction_pct, accuracy


def test_table1_baseline_rows(benchmark, cifar_loaders, trained_vgg_state):
    train_loader, test_loader = cifar_loaders
    baseline_model = load_vgg(trained_vgg_state)
    baseline_acc = evaluate(baseline_model, test_loader).accuracy

    rows = []
    static_results = {}
    for method in ("l1", "taylor", "gm", "fo"):
        row, reduction, accuracy = run_static(
            method, trained_vgg_state, train_loader, test_loader, baseline_acc
        )
        rows.append(row)
        static_results[method] = (reduction, accuracy)

    def dynamic_run():
        return run_dynamic(trained_vgg_state, train_loader, test_loader, baseline_acc)

    dynamic_row, dynamic_reduction, dynamic_acc = benchmark.pedantic(
        dynamic_run, rounds=1, iterations=1
    )
    rows.append(dynamic_row)

    print("\n" + format_table(rows, title="Table I (harness scale, synthetic CIFAR10)"))
    print(f"  static ratio vector:  {STATIC_RATIOS}")
    print(f"  dynamic ratio vector: {DYNAMIC_RATIOS}")

    chance = 0.1
    for method, (reduction, accuracy) in static_results.items():
        assert 20.0 < reduction < 60.0, f"{method} reduction out of Table I band"
        assert accuracy > 2.5 * chance, f"{method} failed to recover with fine-tuning"

    # The dynamic method's headline: markedly higher reduction than the
    # static band at usable accuracy (Table I: 53.5% vs 34.2-44.1%).
    assert dynamic_reduction > max(r for r, _ in static_results.values()) + 5.0
    assert dynamic_acc > 2.5 * chance