"""Unit tests for the greedy per-block ratio search."""

import pytest

from repro.core.autotune import AutotuneResult, greedy_ratio_search
from repro.core.pruning import PruningConfig, instrument_model
from repro.core.training import fit
from repro.models import VGG


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    from repro.nn.data import DataLoader

    train, test = tiny_dataset.splits()
    train_loader = DataLoader(train, batch_size=16, shuffle=True, seed=3)
    test_loader = DataLoader(test, batch_size=16)
    model = VGG(num_classes=4, width_multiplier=0.1, seed=0)
    fit(model, train_loader, epochs=6, lr=0.05)
    handle = instrument_model(model, PruningConfig.disabled(model.num_blocks))
    return handle, test_loader


class TestValidation:
    def test_bad_dimension(self, trained):
        handle, loader = trained
        with pytest.raises(ValueError):
            greedy_ratio_search(handle, loader, (3, 32, 32), 10, 0.1, dimension="depth")

    def test_bad_step(self, trained):
        handle, loader = trained
        with pytest.raises(ValueError):
            greedy_ratio_search(handle, loader, (3, 32, 32), 10, 0.1, step=0.0)

    def test_bad_drop(self, trained):
        handle, loader = trained
        with pytest.raises(ValueError):
            greedy_ratio_search(handle, loader, (3, 32, 32), 10, -0.5)


class TestSearch:
    def test_reaches_modest_target(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=10.0, max_drop=0.3, step=0.2,
        )
        assert isinstance(result, AutotuneResult)
        assert result.target_reached
        assert result.reduction_pct >= 10.0
        assert result.accuracy >= result.baseline_accuracy - 0.3 - 1e-9

    def test_history_is_monotone_in_reduction(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=15.0, max_drop=0.4, step=0.2,
        )
        reductions = [step.reduction_pct for step in result.history]
        assert reductions == sorted(reductions)
        assert len(result.history) >= 1

    def test_zero_budget_yields_conservative_vector(self, trained):
        # With a tiny accuracy budget the search must stop early rather
        # than violate the floor.
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=60.0, max_drop=0.0, step=0.3,
        )
        assert result.accuracy >= result.baseline_accuracy - 1e-9
        if not result.target_reached:
            assert result.reduction_pct < 60.0

    def test_ratios_respect_ceiling(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=40.0, max_drop=0.5, step=0.25, max_ratio=0.5,
        )
        assert all(r <= 0.5 + 1e-9 for r in result.ratios)

    def test_handle_left_at_found_vector(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=8.0, max_drop=0.3, step=0.2,
        )
        for point, pruner in handle.pruners:
            assert pruner.channel_ratio == pytest.approx(result.ratios[point.block_index])

    def test_spatial_dimension_search(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=5.0, max_drop=0.4, step=0.3, dimension="spatial",
        )
        for point, pruner in handle.pruners:
            assert pruner.spatial_ratio == pytest.approx(result.ratios[point.block_index])
            assert pruner.channel_ratio == 0.0


class TestAutotuneArtifacts:
    """The autotune → registry pipeline (``repro autotune --save``)."""

    def _result(self):
        from repro.core.autotune import AutotuneStep

        return AutotuneResult(
            ratios=[0.2, 0.0, 0.4, 0.6, 0.6],
            accuracy=0.71,
            reduction_pct=31.5,
            baseline_accuracy=0.75,
            target_reached=True,
            history=[AutotuneStep(block=2, ratio=0.4, accuracy=0.73, reduction_pct=12.0)],
        )

    def test_metadata_records_measured_outcome(self):
        from repro.core.autotune import autotune_metadata

        meta = autotune_metadata(self._result(), arch="vgg16", seed=3)
        assert meta["source"] == "autotune"
        assert meta["arch"] == "vgg16" and meta["seed"] == 3
        tuned = meta["autotune"]
        assert tuned["ratios"] == [0.2, 0.0, 0.4, 0.6, 0.6]
        assert tuned["accuracy"] == pytest.approx(0.71)
        assert tuned["reduction_pct"] == pytest.approx(31.5)
        assert tuned["accuracy_drop"] == pytest.approx(0.04)
        assert tuned["target_reached"] is True
        assert tuned["accepted_moves"] == 1

    def test_saved_artifact_carries_tuned_vector(self, trained, tmp_path):
        from repro.core.autotune import autotune_metadata
        from repro.serve import ModelRegistry

        handle, _ = trained
        result = self._result()
        handle.set_block_ratios(result.ratios, [0.0] * len(result.ratios))
        registry = ModelRegistry(str(tmp_path))
        name, version = registry.save(
            "tuned", handle, metadata=autotune_metadata(result, arch="vgg16")
        )
        manifest = registry.manifest(name, version)
        assert manifest["metadata"]["autotune"]["reduction_pct"] == pytest.approx(31.5)
        artifact = registry.load(name, version)
        loaded = {pt.block_index: pr.channel_ratio for pt, pr in artifact.handle.pruners}
        for block, ratio in enumerate(result.ratios):
            if block in loaded:
                assert loaded[block] == pytest.approx(ratio)
