"""Static pruning baselines: L1 [8], Taylor [19], GM [20], FO [21], random."""

from .criteria import (
    DATA_CRITERIA,
    WEIGHT_CRITERIA,
    FilterStatsCollector,
    activation_importance,
    geometric_median,
    l1_norm,
    l2_norm,
    random_scores,
    taylor_expansion,
)
from .dynamic import FBSGate, GatedModel, SEBlock, instrument_with_gates
from .static import STATIC_METHODS, StaticFilterPruner, StaticPruningResult

__all__ = [
    "l1_norm",
    "l2_norm",
    "geometric_median",
    "taylor_expansion",
    "activation_importance",
    "random_scores",
    "FilterStatsCollector",
    "WEIGHT_CRITERIA",
    "DATA_CRITERIA",
    "StaticFilterPruner",
    "StaticPruningResult",
    "STATIC_METHODS",
    "SEBlock",
    "FBSGate",
    "GatedModel",
    "instrument_with_gates",
]
