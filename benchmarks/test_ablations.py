"""Design-choice ablations called out in DESIGN.md.

* **Masking dimension** — channel-only vs spatial-only vs combined pruning
  at matched FLOPs reduction (Sec. V-C argues multi-dimension flexibility
  is what lets AntiDote win everywhere).
* **Static vs dynamic criterion at equal ratios** — the same ratio vector
  applied statically (L1 filters removed permanently) vs dynamically
  (per-input attention masks): the dynamic variant should retain more
  accuracy because it re-selects components per input.
"""

import pytest

from repro.baselines import StaticFilterPruner
from repro.core.flops import dynamic_flops
from repro.core.pruning import PruningConfig, instrument_model
from repro.core.training import evaluate

from .bench_utils import load_resnet, load_vgg

ZEROS3 = [0.0] * 3


def run_config(model, test_loader, channel, spatial):
    handle = instrument_model(model, PruningConfig(channel, spatial))
    handle.reset_stats()
    accuracy = evaluate(model, test_loader).accuracy
    report = dynamic_flops(handle, (3, 32, 32))
    return accuracy, report.reduction_pct


def test_masking_dimension_ablation(benchmark, cifar_loaders, trained_resnet_state):
    _, test_loader = cifar_loaders

    def sweep():
        rows = {}
        rows["channel-only"] = run_config(
            load_resnet(trained_resnet_state), test_loader, [0.5] * 3, ZEROS3
        )
        rows["spatial-only"] = run_config(
            load_resnet(trained_resnet_state), test_loader, ZEROS3, [0.5] * 3
        )
        rows["combined"] = run_config(
            load_resnet(trained_resnet_state), test_loader, [0.3] * 3, [0.3] * 3
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n[Ablation — masking dimension, ResNet]")
    for name, (acc, red) in rows.items():
        print(f"  {name:>13}: accuracy {acc:.3f}, FLOPs reduction {red:.1f}%")

    # All three remove real computation.
    for name, (_, red) in rows.items():
        assert red > 10.0, f"{name} should remove >10% FLOPs"
    # The combined setting reaches comparable reduction with milder
    # per-dimension ratios — the flexibility argument.
    combined_acc, combined_red = rows["combined"]
    assert combined_red > 15.0
    assert combined_acc >= min(rows["channel-only"][0], rows["spatial-only"][0]) - 0.1


def test_dynamic_vs_static_same_ratios(benchmark, cifar_loaders, trained_vgg_state):
    _, test_loader = cifar_loaders
    # Mild enough that per-input selection retains signal; static removal
    # without its usual fine-tuning collapses (which is the point: dynamic
    # pruning needs no recovery phase at these ratios).
    ratios = [0.1, 0.1, 0.2, 0.2, 0.2]

    def run_both():
        dynamic_model = load_vgg(trained_vgg_state)
        instrument_model(dynamic_model, PruningConfig(ratios, [0.0] * 5))
        dynamic_acc = evaluate(dynamic_model, test_loader).accuracy

        static_model = load_vgg(trained_vgg_state)
        StaticFilterPruner(static_model, "l1").apply(ratios)
        static_acc = evaluate(static_model, test_loader).accuracy
        return dynamic_acc, static_acc

    dynamic_acc, static_acc = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\n[Ablation — same ratio vector {ratios}, no retraining]")
    print(f"  dynamic (attention, per-input): {dynamic_acc:.3f}")
    print(f"  static  (L1, permanent):        {static_acc:.3f}")

    # Per-input re-selection must clearly beat permanent removal at the
    # same ratios without retraining — the paper's core quantitative
    # argument (Sec. I): dynamic redundancy exceeds static redundancy.
    assert dynamic_acc >= static_acc + 0.3


def test_granularity_ablation(benchmark, cifar_loaders, trained_vgg_state):
    """Per-input masks (paper) vs batch-union masks (deployment relaxation).

    The union keeps every channel any sample needs, so it must preserve at
    least the per-input accuracy while saving less — quantifying the cost
    of batching-friendly masks.
    """
    _, test_loader = cifar_loaders
    ratios = [0.2, 0.2, 0.5, 0.7, 0.7]

    def run(granularity):
        model = load_vgg(trained_vgg_state)
        handle = instrument_model(model, PruningConfig(ratios, [0.0] * 5))
        for _, pruner in handle.pruners:
            pruner.granularity = granularity
        acc = evaluate(model, test_loader).accuracy
        report = dynamic_flops(handle, (3, 32, 32))
        return acc, report.reduction_pct

    (per_acc, per_red), (batch_acc, batch_red) = benchmark.pedantic(
        lambda: (run("input"), run("batch")), rounds=1, iterations=1
    )
    print(f"\n[Ablation — mask granularity at ratios {ratios}]")
    print(f"  per-input (paper): accuracy {per_acc:.3f}, FLOPs reduction {per_red:.1f}%")
    print(f"  batch-union:       accuracy {batch_acc:.3f}, FLOPs reduction {batch_red:.1f}%")
    assert batch_acc >= per_acc - 0.05, "union masks keep strictly more signal"
    assert batch_red <= per_red + 1e-9, "union masks cannot save more FLOPs"


def test_threshold_vs_topk_ablation(benchmark, cifar_loaders, trained_vgg_state):
    """Fixed top-k (Eq. 3) vs input-adaptive threshold masks.

    The extension's promise: with a threshold, per-input keep fractions
    *vary* (easy inputs prune harder), which fixed top-k cannot express.
    """
    from repro.core.pruning import calibrate_thresholds

    _, test_loader = cifar_loaders

    def run():
        model = load_vgg(trained_vgg_state)
        handle = instrument_model(model, PruningConfig([0.5] * 5, [0.0] * 5))
        images, _ = next(iter(test_loader))
        calibrate_thresholds(handle, images, fraction=0.6)
        acc = evaluate(model, test_loader).accuracy
        # Per-input keep counts at the deepest site (threshold bites there).
        counts = handle.pruners[-1][1].last_channel_mask.sum(axis=1)
        report = dynamic_flops(handle, (3, 32, 32))
        return acc, report.reduction_pct, counts

    acc, reduction, counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[Ablation — threshold masks (calibrated, 0.6x median)] accuracy {acc:.3f}, "
          f"reduction {reduction:.1f}%, last-site keep counts min/max {counts.min()}/{counts.max()}")
    assert acc > 0.3
    assert 5.0 < reduction < 100.0
    assert counts.max() > counts.min(), "threshold masks must adapt per input"
