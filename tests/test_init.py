"""Unit tests for weight initializers."""

import math

import numpy as np
import pytest

from repro.nn.init import (
    compute_fans,
    kaiming_normal,
    kaiming_uniform,
    uniform_fan_in,
    xavier_uniform,
)


class TestComputeFans:
    def test_linear_weight(self):
        assert compute_fans((10, 5)) == (5, 10)

    def test_conv_weight_counts_receptive_field(self):
        # (out=8, in=4, 3, 3): fan_in = 4*9, fan_out = 8*9.
        assert compute_fans((8, 4, 3, 3)) == (36, 72)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            compute_fans((5,))


class TestKaimingNormal:
    def test_std_matches_relu_gain(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal((256, 64, 3, 3), rng)
        expected = math.sqrt(2.0 / (64 * 9))
        assert w.std() == pytest.approx(expected, rel=0.05)
        assert w.dtype == np.float32

    def test_linear_gain(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal((512, 512), rng, nonlinearity="linear")
        assert w.std() == pytest.approx(1.0 / math.sqrt(512), rel=0.05)

    def test_zero_mean(self):
        w = kaiming_normal((128, 128), np.random.default_rng(1))
        assert abs(w.mean()) < 0.01


class TestKaimingUniform:
    def test_bound_respected(self):
        rng = np.random.default_rng(0)
        w = kaiming_uniform((64, 32), rng)
        gain = math.sqrt(2.0 / (1.0 + 5.0))
        bound = gain * math.sqrt(3.0 / 32)
        assert np.abs(w).max() <= bound
        # Values actually fill the range.
        assert np.abs(w).max() > 0.8 * bound


class TestXavierUniform:
    def test_bound(self):
        w = xavier_uniform((40, 60), np.random.default_rng(0))
        bound = math.sqrt(6.0 / 100)
        assert np.abs(w).max() <= bound


class TestUniformFanIn:
    def test_bias_range(self):
        b = uniform_fan_in((128,), 64, np.random.default_rng(0))
        assert np.abs(b).max() <= 1.0 / 8.0

    def test_zero_fan_in_gives_zeros(self):
        b = uniform_fan_in((4,), 0, np.random.default_rng(0))
        np.testing.assert_allclose(b, 0.0)

    def test_deterministic_per_seed(self):
        a = uniform_fan_in((8,), 16, np.random.default_rng(5))
        b = uniform_fan_in((8,), 16, np.random.default_rng(5))
        np.testing.assert_allclose(a, b)
