"""Shared model infrastructure: pruning-point metadata.

AntiDote inserts dynamic-pruning layers *between consecutive convolutional
layers* (Fig. 1).  Each model in the zoo declares where those insertion
sites are via :meth:`PrunableModel.pruning_points`, so the instrumentation
pass in :mod:`repro.core.pruning` and the FLOPs accounting in
:mod:`repro.core.flops` stay architecture-agnostic.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..nn import Module

__all__ = ["PruningPoint", "PrunableModel"]


@dataclasses.dataclass(frozen=True)
class PruningPoint:
    """One legal insertion site for a dynamic-pruning layer.

    Attributes
    ----------
    path:
        Dotted submodule path of the activation after which the feature map
        may be pruned (the site module gets wrapped into
        ``Sequential(site, DynamicPruning)``).
    block_index:
        Index of the paper-level block/group the site belongs to.  The
        paper's pruning-ratio vectors are per block (Sec. IV-B).
    layer_index:
        Index of the producing conv layer within the whole network (for
        reporting).
    out_channels:
        Channel count of the feature map at the site.
    next_conv_path:
        Dotted path of the convolution whose computation the pruning reduces
        (the paper's "next layer").
    pool_between:
        Spatial downsampling factor applied between the site and
        ``next_conv_path`` (1 when they see the same resolution; 2 when a
        2x2 max-pool sits between, as at VGG block boundaries).
    conv_path:
        Dotted path of the convolution that *produces* the feature map at
        this site.  Static filter-pruning baselines rank and remove this
        conv's filters; dynamic pruning itself never touches it.
    """

    path: str
    block_index: int
    layer_index: int
    out_channels: int
    next_conv_path: str
    pool_between: int = 1
    conv_path: str = ""


class PrunableModel(Module):
    """Base class for models that support AntiDote instrumentation."""

    def pruning_points(self) -> List[PruningPoint]:
        raise NotImplementedError

    @property
    def num_blocks(self) -> int:
        """Number of paper-level blocks (length of per-block ratio vectors)."""
        points = self.pruning_points()
        return max(p.block_index for p in points) + 1 if points else 0
