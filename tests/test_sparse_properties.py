"""Property-based tests for the sparse executor and checkpointing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.sparse_exec import sparse_conv2d
from repro.nn import Tensor
from repro.nn import functional as F

small_floats = st.floats(-3, 3, allow_nan=False, allow_infinity=False, width=32)


def conv_inputs():
    return st.tuples(
        st.integers(1, 2),  # batch
        st.integers(1, 4),  # in channels
        st.integers(1, 3),  # out channels
        st.integers(4, 7),  # spatial
    )


@given(conv_inputs(), st.data())
@settings(max_examples=30, deadline=None)
def test_sparse_channel_conv_equals_dense_masked(dims, data):
    n, cin, cout, size = dims
    rng = np.random.default_rng(data.draw(st.integers(0, 100)))
    x = rng.normal(size=(n, cin, size, size)).astype(np.float32)
    w = rng.normal(size=(cout, cin, 3, 3)).astype(np.float32)
    mask = rng.random((n, cin)) > 0.4
    mask[:, 0] = True  # at least one channel survives per sample
    masked = x * mask[:, :, None, None]
    sparse = sparse_conv2d(x, w, None, 1, 1, channel_mask=mask)
    dense = F.conv2d(Tensor(masked), Tensor(w), None, 1, 1).data
    np.testing.assert_allclose(sparse, dense, rtol=1e-3, atol=1e-4)


@given(conv_inputs(), st.data())
@settings(max_examples=30, deadline=None)
def test_sparse_column_conv_zero_exactly_off_mask(dims, data):
    n, cin, cout, size = dims
    rng = np.random.default_rng(data.draw(st.integers(0, 100)))
    x = rng.normal(size=(n, cin, size, size)).astype(np.float32)
    w = rng.normal(size=(cout, cin, 3, 3)).astype(np.float32)
    smask = rng.random((n, size, size)) > 0.5
    out = sparse_conv2d(x * smask[:, None], w, None, 1, 1, spatial_mask=smask)
    for i in range(n):
        dropped = ~smask[i]
        np.testing.assert_allclose(out[i][:, dropped], 0.0)


@given(conv_inputs(), st.data())
@settings(max_examples=20, deadline=None)
def test_sparse_conv_linear_in_input(dims, data):
    # Convolution is linear; skipping must preserve that on kept positions.
    n, cin, cout, size = dims
    rng = np.random.default_rng(data.draw(st.integers(0, 100)))
    a = rng.normal(size=(n, cin, size, size)).astype(np.float32)
    b = rng.normal(size=(n, cin, size, size)).astype(np.float32)
    w = rng.normal(size=(cout, cin, 3, 3)).astype(np.float32)
    mask = rng.random((n, cin)) > 0.3
    mask[:, 0] = True
    out_sum = sparse_conv2d(a + b, w, None, 1, 1, channel_mask=mask)
    out_parts = sparse_conv2d(a, w, None, 1, 1, channel_mask=mask) + sparse_conv2d(
        b, w, None, 1, 1, channel_mask=mask
    )
    np.testing.assert_allclose(out_sum, out_parts, rtol=1e-2, atol=1e-3)


@given(
    hnp.arrays(np.float32, st.tuples(st.integers(1, 4), st.integers(1, 6)),
               elements=small_floats),
    st.dictionaries(st.sampled_from(["epoch", "acc", "note"]),
                    st.one_of(st.integers(0, 99), st.floats(0, 1, allow_nan=False),
                              st.text(max_size=10)), max_size=3),
)
@settings(max_examples=20, deadline=None)
def test_checkpoint_roundtrip_property(tmp_path_factory, weight, metadata):
    from repro.nn import Linear
    from repro.nn.serialization import load_checkpoint, save_checkpoint

    out_features, in_features = weight.shape
    model = Linear(in_features, out_features)
    model.weight.data = weight.copy()
    path = str(tmp_path_factory.mktemp("ckpt") / "m.npz")
    save_checkpoint(model, path, metadata=metadata)

    target = Linear(in_features, out_features)
    restored = load_checkpoint(target, path)
    np.testing.assert_array_equal(target.weight.data, weight)
    for key, value in metadata.items():
        if isinstance(value, float):
            assert restored[key] == pytest.approx(value)
        else:
            assert restored[key] == value
