"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.core.masks import reserved_count
from repro.core.pruning import DynamicPruning
from repro.nn import BatchNorm2d, Conv2d, Linear, Sequential, Tensor, no_grad
from repro.nn import functional as F


class TestDegenerateInputs:
    def test_pruning_all_zero_feature_map(self):
        # Attention ties everywhere; the layer must still keep exactly k
        # channels and not crash or emit NaNs.
        layer = DynamicPruning(channel_ratio=0.5, spatial_ratio=0.5)
        x = Tensor(np.zeros((2, 8, 4, 4), dtype=np.float32))
        out = layer(x)
        assert np.isfinite(out.data).all()
        np.testing.assert_array_equal(
            layer.last_channel_mask.sum(axis=1), reserved_count(8, 0.5)
        )

    def test_pruning_constant_feature_map(self):
        layer = DynamicPruning(channel_ratio=0.75)
        x = Tensor(np.full((1, 8, 2, 2), 3.0, dtype=np.float32))
        out = layer(x)
        assert layer.last_channel_mask.sum() == reserved_count(8, 0.75)
        kept_values = out.data[0][layer.last_channel_mask[0]]
        np.testing.assert_allclose(kept_values, 3.0)

    def test_batch_size_one_conv(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 3, 5, 5)).astype(np.float32)))
        assert out.shape == (1, 4, 5, 5)

    def test_batch_size_one_batchnorm_training(self, rng):
        # A 1-sample batch has per-pixel variance only; must stay finite.
        bn = BatchNorm2d(2)
        bn.train()
        out = bn(Tensor(rng.normal(size=(1, 2, 4, 4)).astype(np.float32)))
        assert np.isfinite(out.data).all()

    def test_single_pixel_spatial_map(self):
        layer = DynamicPruning(spatial_ratio=0.9)
        x = Tensor(np.ones((1, 4, 1, 1), dtype=np.float32))
        out = layer(x)  # one column total; must keep it
        np.testing.assert_allclose(out.data, x.data)

    def test_cross_entropy_single_sample(self, rng):
        logits = Tensor(rng.normal(size=(1, 5)).astype(np.float32), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([2]))
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_minimum_channels_after_extreme_ratio(self):
        # Ratio 1.0 must never zero the whole map (reserved_count >= 1).
        layer = DynamicPruning(channel_ratio=1.0)
        x = Tensor(np.abs(np.random.default_rng(0).normal(size=(2, 16, 3, 3))).astype(np.float32))
        out = layer(x)
        assert layer.last_channel_mask.sum(axis=1).min() == 1
        assert np.abs(out.data).sum() > 0


class TestNumericalRobustness:
    def test_large_activation_attention_finite(self):
        layer = DynamicPruning(channel_ratio=0.5)
        x = Tensor(np.full((1, 4, 2, 2), 1e30, dtype=np.float32))
        out = layer(x)
        assert np.isfinite(layer.mean_channel_keep)

    def test_softmax_extreme_logits(self):
        logits = Tensor(np.array([[1e4, -1e4, 0.0]], dtype=np.float32))
        probs = F.softmax(logits)
        assert np.isfinite(probs.data).all()
        assert probs.data[0, 0] == pytest.approx(1.0)

    def test_bn_eval_tiny_running_var(self, rng):
        bn = BatchNorm2d(2)
        bn.eval()
        bn.running_var[:] = 1e-12
        out = bn(Tensor(rng.normal(size=(2, 2, 3, 3)).astype(np.float32)))
        assert np.isfinite(out.data).all()  # eps floors the denominator

    def test_deep_sequential_forward_backward(self, rng):
        # 60 layers: gradient must survive end to end without recursion
        # errors or NaNs (He init keeps scales sane).
        layers = []
        gen = np.random.default_rng(0)
        for _ in range(30):
            layers += [Linear(16, 16, rng=gen)]
        model = Sequential(*layers)
        x = Tensor(rng.normal(size=(2, 16)).astype(np.float32), requires_grad=True)
        (model(x) ** 2).sum().backward()
        assert np.isfinite(x.grad).all()


class TestInterfaceMisuse:
    def test_conv_wrong_input_rank(self):
        conv = Conv2d(3, 4, 3)
        with pytest.raises(Exception):
            conv(Tensor(np.zeros((3, 8, 8), dtype=np.float32)))

    def test_kernel_larger_than_input(self):
        conv = Conv2d(1, 1, 5)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32)))

    def test_instrument_requires_prunable_model(self):
        from repro.core.pruning import instrument_model

        plain = Sequential(Conv2d(3, 4, 3))
        with pytest.raises(AttributeError):
            instrument_model(plain)  # no pruning_points()

    def test_flops_before_any_forward_uses_full_keep(self):
        # dynamic_flops on a never-run handle reports zero reduction
        # (keep fractions default to 1), not an error.
        from repro.core.flops import dynamic_flops
        from repro.core.pruning import PruningConfig, instrument_model
        from repro.models import vgg11

        model = vgg11(width_multiplier=0.1)
        handle = instrument_model(model, PruningConfig([0.5] * 5, [0.0] * 5))
        report = dynamic_flops(handle, (3, 32, 32))
        assert report.reduction_pct == pytest.approx(0.0)
