"""Unit tests for FLOPs accounting — including the paper's baseline numbers."""

import numpy as np
import pytest

from repro.core.flops import count_flops, dynamic_flops
from repro.core.pruning import PruningConfig, instrument_model
from repro.models import resnet20, resnet56, vgg16, vgg16_slim
from repro.nn import Conv2d, Linear, MaxPool2d, ReLU, Sequential, Tensor, no_grad


class TestStaticCounting:
    def test_single_conv_hand_math(self):
        model = Sequential(Conv2d(3, 8, 3, stride=1, padding=1))
        report = count_flops(model, (3, 10, 10))
        assert report.total == 3 * 3 * 3 * 8 * 10 * 10

    def test_strided_conv(self):
        model = Sequential(Conv2d(4, 4, 3, stride=2, padding=1))
        report = count_flops(model, (4, 8, 8))
        assert report.layers[0].output_shape == (4, 4, 4)
        assert report.total == 4 * 9 * 4 * 4 * 4

    def test_linear(self):
        from repro.nn import GlobalAvgPool2d

        model = Sequential(Conv2d(2, 3, 1), GlobalAvgPool2d(), Linear(3, 7))
        report = count_flops(model, (2, 4, 4))
        linear = [layer for layer in report.layers if layer.kind == "linear"][0]
        assert linear.flops == 21

    def test_pool_changes_shape_not_flops(self):
        model = Sequential(Conv2d(2, 2, 3, padding=1), MaxPool2d(2), Conv2d(2, 2, 3, padding=1))
        report = count_flops(model, (2, 8, 8))
        first, second = report.conv_layers()
        assert first.output_shape == (2, 8, 8)
        assert second.output_shape == (2, 4, 4)
        assert second.flops == first.flops // 4

    def test_channel_mismatch_detected(self):
        model = Sequential(Conv2d(3, 4, 3), Conv2d(5, 4, 3))
        with pytest.raises(ValueError):
            count_flops(model, (3, 16, 16))

    def test_unknown_module_rejected(self):
        class Exotic:  # not a Module the tracer knows
            pass

        from repro.nn import Module

        class Custom(Module):
            def forward(self, x):
                return x

        with pytest.raises(TypeError):
            count_flops(Custom(), (1, 2, 2))

    def test_input_shape_validation(self):
        with pytest.raises(ValueError):
            count_flops(vgg16_slim(), (3, 32))


class TestPaperBaselines:
    """The paper's 'Baseline FLOPs' column must reproduce from architecture."""

    def test_vgg16_cifar(self):
        total = count_flops(vgg16(), (3, 32, 32)).total
        assert total == pytest.approx(3.13e8, rel=0.01)

    def test_resnet56_cifar(self):
        total = count_flops(resnet56(), (3, 32, 32)).total
        assert total == pytest.approx(1.28e8, rel=0.02)

    def test_vgg16_imagenet224(self):
        total = count_flops(vgg16(num_classes=100), (3, 224, 224)).total
        assert total == pytest.approx(1.52e10, rel=0.02)

    def test_instrumentation_does_not_change_flops(self):
        model = vgg16_slim()
        before = count_flops(model, (3, 32, 32)).total
        instrument_model(model)
        after = count_flops(model, (3, 32, 32)).total
        assert before == after


class TestDynamicAccounting:
    def _run(self, channel, spatial, model=None, size=32, batches=2):
        model = model or vgg16_slim(seed=0)
        handle = instrument_model(
            model, PruningConfig([channel] * model.num_blocks, [spatial] * model.num_blocks)
        )
        model.eval()
        rng = np.random.default_rng(0)
        with no_grad():
            for _ in range(batches):
                model(Tensor(rng.normal(size=(2, 3, size, size)).astype(np.float32)))
        return handle, dynamic_flops(handle, (3, size, size))

    def test_no_pruning_no_reduction(self):
        _, report = self._run(0.0, 0.0)
        assert report.reduction_pct == pytest.approx(0.0)
        assert report.effective_flops == report.baseline_flops

    def test_channel_only_reduction_matches_mask_arithmetic(self):
        handle, report = self._run(0.5, 0.0)
        # Every affected conv scales by its recorded channel keep fraction.
        expected = 0.0
        static = count_flops(handle.model, (3, 32, 32))
        for point, pruner in handle.pruners:
            base = static.by_path[point.next_conv_path].flops
            expected += base * (1.0 - pruner.mean_channel_keep)
        assert report.reduction == pytest.approx(expected)
        assert report.spatial_reduction == 0.0

    def test_spatial_only_reduction(self):
        _, report = self._run(0.0, 0.5)
        assert report.channel_reduction == 0.0
        assert report.spatial_reduction_pct > 10.0

    def test_decomposition_sums_to_total(self):
        _, report = self._run(0.4, 0.4)
        assert report.channel_reduction + report.spatial_reduction == pytest.approx(
            report.reduction, rel=1e-9
        )

    def test_effective_below_baseline_when_pruning(self):
        _, report = self._run(0.3, 0.0)
        assert 0 < report.effective_flops < report.baseline_flops

    def test_resnet_dynamic(self):
        model = resnet20(width_multiplier=0.5, seed=0)
        handle, report = self._run(0.5, 0.5, model=model)
        assert report.reduction_pct > 5.0
        # Only conv2 layers (the paper's even layers) are reduced.
        assert all(path.endswith("conv2") for path in report.per_conv)

    def test_reduction_monotone_in_ratio(self):
        _, low = self._run(0.2, 0.0)
        _, high = self._run(0.8, 0.0)
        assert high.reduction_pct > low.reduction_pct

    def test_vgg_channel_ratio_reduction_scale(self):
        # With uniform channel ratio r and no spatial pruning, the reduction
        # over affected convs is ~r; the unaffected first/last convs dilute it.
        _, report = self._run(0.5, 0.0)
        assert 30.0 < report.reduction_pct < 55.0
