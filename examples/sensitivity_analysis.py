#!/usr/bin/env python3
"""Block sensitivity analysis (the paper's Fig. 3 workflow).

Trains a slim VGG16 and a small ResNet, sweeps the pruning ratio of one
block at a time, prints the per-block accuracy curves as ASCII, and derives
per-block dropout upper bounds from an accuracy-drop tolerance — exactly
how Sec. IV-B chooses the TTD targets.
"""

from repro.core import PruningConfig, block_sensitivity, fit, instrument_model, suggest_upper_bounds
from repro.datasets import cifar10_like, make_loaders
from repro.models import ResNet, vgg16

RATIOS = [0.1, 0.3, 0.5, 0.7, 0.9]
TOLERANCE = 0.15  # accuracy-drop tolerance for the upper-bound rule


def ascii_curve(curve, width=40) -> str:
    """Render (ratio, accuracy) pairs as a one-line bar chart."""
    cells = []
    for ratio, acc in curve:
        bar = "#" * int(acc * 10)
        cells.append(f"{ratio:.1f}:{bar:<10}({acc:.2f})")
    return "  ".join(cells)


def analyze(name, model, train_loader, test_loader, dimension):
    print(f"\n== {name}: {dimension} sensitivity ==")
    handle = instrument_model(model, PruningConfig.disabled(model.num_blocks))
    result = block_sensitivity(handle, test_loader, RATIOS, dimension=dimension)
    print(f"baseline accuracy: {result.baseline_accuracy:.3f}")
    for block, curve in sorted(result.curves.items()):
        print(f"  block {block + 1}: {ascii_curve(curve)}")
    bounds = suggest_upper_bounds(result, max_drop=TOLERANCE)
    print(f"suggested per-block upper bounds (tolerance {TOLERANCE}): {bounds}")
    return bounds


def main() -> None:
    dataset = cifar10_like(train_per_class=48, test_per_class=12)
    train_loader, test_loader = make_loaders(dataset, batch_size=32, seed=0)

    vgg = vgg16(num_classes=10, width_multiplier=0.125, seed=0)
    print("training slim VGG16...")
    fit(vgg, train_loader, epochs=6, lr=0.08)
    analyze("VGG16", vgg, train_loader, test_loader, "channel")

    resnet = ResNet(2, num_classes=10, width_multiplier=0.5, seed=0)
    print("\ntraining small ResNet...")
    fit(resnet, train_loader, epochs=6, lr=0.08)
    analyze("ResNet", resnet, train_loader, test_loader, "channel")

    print(
        "\nAs in Fig. 3: early blocks are the most sensitive; deep blocks"
        " tolerate aggressive ratios, which motivates per-block targets."
    )


if __name__ == "__main__":
    main()
