"""One home for the quantile math the repo kept reimplementing.

``serve/session.py``, ``serve/bench.py``, ``serve/cascade.py`` and
``core/runtime_bench.py`` each grew their own p50/p95 calls (and three
subtly different empty-list guards).  They now all route through here.

Two families live side by side:

* **Sample quantiles** (:func:`quantile`, :func:`median`,
  :func:`latency_summary_ms`) over materialized value lists — linear
  interpolation, matching ``np.percentile``'s default exactly, because
  published bench JSON must not shift when call sites migrate.
* **Streaming histogram quantiles** (:func:`histogram_quantile`) over
  fixed-bucket counts — what the metrics registry uses to report
  p50/p95/p99 without storing a single sample.  Estimates interpolate
  linearly *within* the winning bucket and are clamped to the exact
  observed min/max, so ``p95 >= p50 > 0`` holds whenever the
  observations were positive.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "quantile",
    "median",
    "latency_summary_ms",
    "histogram_quantile",
]


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-th quantile (``q`` in [0, 1]) of ``values``.

    Linear interpolation between order statistics — bit-compatible with
    ``np.percentile(values, q * 100)``.  Raises on empty input, same as
    numpy, because "the p95 of nothing" is a caller bug, not a zero.
    """
    if len(values) == 0:
        raise ValueError("quantile() of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q}")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q * 100.0))


def median(values: Sequence[float]) -> float:
    """``quantile(values, 0.5)`` — matches ``np.median`` for float input."""
    return quantile(values, 0.5)


def latency_summary_ms(
    seconds: Sequence[float],
) -> Dict[str, float]:
    """The serving layer's standard latency dict from per-request seconds.

    Returns ``{"p50": ..., "p95": ..., "mean": ..., "max": ...}`` in
    milliseconds, or all-zeros when no requests completed yet (sessions
    report stats before traffic arrives; that is not an error).
    """
    if len(seconds) == 0:
        return {"p50": 0.0, "p95": 0.0, "mean": 0.0, "max": 0.0}
    values = np.asarray(seconds, dtype=np.float64) * 1e3
    return {
        "p50": float(np.percentile(values, 50.0)),
        "p95": float(np.percentile(values, 95.0)),
        "mean": float(values.mean()),
        "max": float(values.max()),
    }


def histogram_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    *,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> float:
    """Estimate the ``q``-th quantile from fixed-bucket histogram counts.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; ``counts`` has one extra trailing entry for the overflow
    bucket (> ``bounds[-1]``).  The estimate interpolates linearly within
    the bucket holding the target rank, using the previous bound (or
    ``minimum``) as the bucket floor, and clamps to the exact observed
    ``[minimum, maximum]`` envelope when given — that keeps estimates
    monotone in ``q`` and inside the data's true range.
    """
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"counts must have len(bounds)+1 entries, got {len(counts)} "
            f"for {len(bounds)} bounds"
        )
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q}")
    total = int(sum(counts))
    if total == 0:
        raise ValueError("histogram_quantile() of empty histogram")

    # Rank of the target observation, 1-based, clamped into [1, total].
    rank = max(1, min(total, int(np.ceil(q * total)) or 1))
    cumulative = 0
    estimate: float = bounds[-1] if bounds else 0.0
    for index, count in enumerate(counts):
        if count == 0:
            cumulative += count
            continue
        if cumulative + count >= rank:
            floor = (
                bounds[index - 1]
                if index > 0
                else (minimum if minimum is not None else 0.0)
            )
            ceil = bounds[index] if index < len(bounds) else (
                maximum if maximum is not None else bounds[-1]
            )
            if ceil < floor:
                ceil = floor
            fraction = (rank - cumulative) / count
            estimate = floor + (ceil - floor) * fraction
            break
        cumulative += count

    if minimum is not None:
        estimate = max(estimate, minimum)
    if maximum is not None:
        estimate = min(estimate, maximum)
    return float(estimate)
