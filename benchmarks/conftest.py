"""Shared fixtures for the benchmark harness.

Training is expensive on the NumPy substrate, so models trained once per
session are shared across benchmarks through state dicts (every consumer
clones into a fresh architecture via :mod:`bench_utils`, keeping benchmarks
independent).
"""

from __future__ import annotations

import pytest

from repro.core.training import fit
from repro.datasets import cifar10_like, make_loaders

from .bench_utils import fresh_resnet, fresh_vgg


@pytest.fixture(scope="session")
def cifar_loaders():
    dataset = cifar10_like(train_per_class=48, test_per_class=12)
    return make_loaders(dataset, batch_size=32, seed=0)


@pytest.fixture(scope="session")
def trained_vgg_state(cifar_loaders):
    train_loader, _ = cifar_loaders
    model = fresh_vgg()
    fit(model, train_loader, epochs=6, lr=0.08)
    return model.state_dict()


@pytest.fixture(scope="session")
def trained_resnet_state(cifar_loaders):
    train_loader, _ = cifar_loaders
    model = fresh_resnet()
    fit(model, train_loader, epochs=8, lr=0.08)
    return model.state_dict()
