"""The observability on/off switch and trace-context propagation state.

Everything here exists so that the *disabled* path costs one module
attribute read.  Hot paths — the session scheduler, the plan's conv ops,
the procpool dispatch — guard every tracing branch with::

    from ..obs import runtime as _rt
    ...
    if _rt.enabled:
        ...

``enabled`` is the single module-level flag the tentpole contract names:
it is ``True`` exactly while a :class:`~repro.obs.trace.Tracer` is
installed.  No tracer, no flag, no work — and tracing never touches the
numbers flowing through the engine, so bit-identity of every execution
path is unchanged either way.

Trace context rides a thread-local: the session worker installs the
current request's engine-span context before calling the engine, kernel
ops read it to parent their spans, and the worker restores the previous
value afterwards (workers are re-entrant across predict() callers).
Worker *processes* install their own process-local tracer on the first
traced request they see (see :mod:`repro.serve.procpool`).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .trace import TraceContext, Tracer

__all__ = [
    "enabled",
    "install",
    "uninstall",
    "tracer",
    "current",
    "set_current",
    "reset_current",
]

#: THE module-level flag.  ``True`` iff a tracer is installed.
enabled = False

_tracer: Optional["Tracer"] = None
_tls = threading.local()
_lock = threading.Lock()


def install(new_tracer: "Tracer") -> "Tracer":
    """Install ``new_tracer`` process-wide and raise the enabled flag."""
    global _tracer, enabled
    with _lock:
        _tracer = new_tracer
        enabled = True
    return new_tracer


def uninstall() -> Optional["Tracer"]:
    """Drop the active tracer (if any) and lower the enabled flag."""
    global _tracer, enabled
    with _lock:
        old, _tracer = _tracer, None
        enabled = False
    return old


def tracer() -> Optional["Tracer"]:
    """The installed tracer, or ``None`` when observability is off."""
    return _tracer


def current() -> Optional["TraceContext"]:
    """The calling thread's active trace context (``None`` outside spans)."""
    return getattr(_tls, "ctx", None)


def set_current(ctx: Optional["TraceContext"]) -> Optional["TraceContext"]:
    """Install ``ctx`` as the thread's context; returns the previous one."""
    previous = getattr(_tls, "ctx", None)
    _tls.ctx = ctx
    return previous


def reset_current(previous: Optional["TraceContext"]) -> None:
    """Restore a context saved by :func:`set_current`."""
    _tls.ctx = previous
