"""Weight initialization schemes for ``repro.nn`` modules.

Implements the initializers the paper's PyTorch stack uses by default:
Kaiming (He) initialization for convolutions feeding ReLU nonlinearities and
uniform fan-in initialization for linear layers.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "uniform_fan_in",
    "compute_fans",
]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of ``shape``.

    Convolution weights ``(out, in, k, k)`` count the receptive field in both
    fans, matching ``torch.nn.init._calculate_fan_in_and_fan_out``.
    """
    if len(shape) < 2:
        raise ValueError("fan computation requires at least 2 dimensions")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator, nonlinearity: str = "relu") -> np.ndarray:
    """He-normal initialization: ``std = gain / sqrt(fan_in)``."""
    fan_in, _ = compute_fans(shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He-uniform initialization with leaky-ReLU gain (torch's conv default)."""
    fan_in, _ = compute_fans(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization for tanh/sigmoid-style layers."""
    fan_in, fan_out = compute_fans(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_fan_in(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform ``[-1/sqrt(fan_in), 1/sqrt(fan_in)]`` — torch's bias default."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
