"""Unit tests for the analysis/reporting layer."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    TABLE1_SETTINGS,
    project_full_scale,
    run_table1_setting,
)
from repro.analysis.tables import PAPER_TABLE1, TableRow, format_table
from repro.core.masks import reserved_count
from repro.core.pruning import PruningConfig, instrument_model
from repro.nn import Tensor, no_grad


class TestTableRow:
    def test_accuracy_drop(self):
        row = TableRow("m", "x", 93.3, 93.1)
        assert row.accuracy_drop == pytest.approx(0.2)

    def test_reduction_from_pct(self):
        row = TableRow("m", "x", 90, 90, flops_reduction_pct=41.5)
        assert row.reduction() == 41.5

    def test_reduction_from_flops(self):
        row = TableRow("m", "x", 90, 90, baseline_flops=100.0, final_flops=60.0)
        assert row.reduction() == pytest.approx(40.0)

    def test_reduction_requires_flops(self):
        with pytest.raises(ValueError):
            TableRow("m", "x", 90, 90).reduction()


class TestPaperTable:
    def test_all_four_settings_present(self):
        assert set(PAPER_TABLE1) == {
            "VGG16 (CIFAR10)",
            "ResNet56 (CIFAR10)",
            "VGG16 (CIFAR100)",
            "VGG16 (ImageNet100)",
        }

    def test_proposed_rows_match_headline_numbers(self):
        proposed = [r for r in PAPER_TABLE1["VGG16 (CIFAR10)"] if r.method == "Proposed"]
        assert proposed[0].reduction() == pytest.approx(53.5)
        in100 = [r for r in PAPER_TABLE1["VGG16 (ImageNet100)"] if "Setting-2" in r.method]
        assert in100[0].reduction() == pytest.approx(54.5)

    def test_flops_reduction_consistent_with_flops_columns(self):
        # Where both absolute FLOPs are transcribed, the reduction column
        # must be consistent with them (sanity on the transcription).
        for rows in PAPER_TABLE1.values():
            for row in rows:
                if row.baseline_flops and row.final_flops:
                    derived = 100.0 * (1.0 - row.final_flops / row.baseline_flops)
                    assert derived == pytest.approx(row.flops_reduction_pct, abs=1.0)

    def test_format_table_renders_all_rows(self):
        text = format_table(PAPER_TABLE1["ResNet56 (CIFAR10)"], title="t")
        assert text.count("\n") == 3 + len(PAPER_TABLE1["ResNet56 (CIFAR10)"]) - 1
        assert "Proposed" in text


class TestSettings:
    def test_all_six_settings(self):
        assert set(TABLE1_SETTINGS) == {
            "vgg16_cifar10",
            "resnet56_cifar10",
            "vgg16_cifar100_s1",
            "vgg16_cifar100_s2",
            "vgg16_imagenet100_s1",
            "vgg16_imagenet100_s2",
        }

    def test_paper_ratio_vectors_transcribed(self):
        s = TABLE1_SETTINGS["vgg16_cifar10"]
        assert s.channel_ratios == (0.2, 0.2, 0.6, 0.9, 0.9)
        assert all(r == 0 for r in s.spatial_ratios)
        r = TABLE1_SETTINGS["resnet56_cifar10"]
        assert r.channel_ratios == (0.3, 0.3, 0.6)
        assert r.spatial_ratios == (0.6, 0.6, 0.6)

    def test_ratio_lengths_match_block_counts(self):
        for setting in TABLE1_SETTINGS.values():
            model = setting.harness_model()
            assert len(setting.channel_ratios) == model.num_blocks
            assert len(setting.spatial_ratios) == model.num_blocks


class TestProjection:
    def test_channel_only_projection_is_exact_arithmetic(self):
        setting = TABLE1_SETTINGS["vgg16_cifar10"]
        harness = setting.harness_model()
        handle = instrument_model(
            harness,
            PruningConfig(list(setting.channel_ratios), list(setting.spatial_ratios)),
        )
        total, channel, spatial = project_full_scale(setting, handle)
        assert spatial == 0.0
        assert total == pytest.approx(channel)
        # Hand-check one layer: block 5 ratio 0.9 on 512 channels.
        assert reserved_count(512, 0.9) == 51
        # The projected value must be in the paper's ballpark by construction.
        assert total == pytest.approx(setting.paper_reduction_pct, abs=4.0)

    def test_projection_uses_harness_spatial_stats(self):
        setting = TABLE1_SETTINGS["resnet56_cifar10"]
        harness = setting.harness_model()
        handle = instrument_model(
            harness,
            PruningConfig(list(setting.channel_ratios), list(setting.spatial_ratios)),
        )
        # Without any recorded samples the spatial stats default to keep=1.
        total_before, _, spatial_before = project_full_scale(setting, handle)
        assert spatial_before == 0.0
        rng = np.random.default_rng(0)
        harness.eval()
        with no_grad():
            harness(Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32)))
        total_after, _, spatial_after = project_full_scale(setting, handle)
        assert spatial_after > 10.0
        assert total_after > total_before


class TestEndToEndSetting:
    def test_run_table1_setting_minimal_budget(self):
        outcome = run_table1_setting(
            "vgg16_cifar10", pretrain_epochs=1, ttd_epochs_per_stage=1,
            ttd_final_epochs=1, ttd_step=0.5,
        )
        assert 0.0 <= outcome.pruned_accuracy <= 1.0
        assert outcome.full_scale_reduction_pct == pytest.approx(53.5, abs=5.0)
        assert outcome.instrumented is not None

    def test_unknown_setting_key(self):
        with pytest.raises(KeyError):
            run_table1_setting("vgg19_mnist")
