"""Measured per-geometry kernel autotuner: calibrated dispatch tables.

``PlanConfig`` picks one execution strategy for every convolution in a
model, but ``BENCH_sparse.json`` shows the winner flips with image size
and keep fraction: the stacked path wins small feature maps, the grouped
path wins large ones, ragged bucketing wins adaptive masks, and the best
im2col tile size tracks the L2 working set of each geometry.  This module
replaces the global knobs with a **measured calibration pass at plan
compile time**:

1. Run a small calibration batch through the untuned plan with capture
   enabled, recording each convolution's *site* — input geometry, pending
   channel mask, ragged flag (:func:`tune_plan`).
2. Deduplicate sites by canonical conv geometry ``(Cin, Cout, k, stride,
   padding, H, W, kind, kept, dtype)`` so repeated layers (e.g. VGG conv
   blocks) measure once.
3. For each unique geometry, execute every *candidate* strategy on the
   captured operands, verify its output is bit-identical to the untuned
   baseline (``np.array_equal`` — candidates outside the structurally
   safe family are rejected, never silently shipped), and time it with a
   noise-robust best-of-N harness.
4. Bake the winner ``(strategy, kept_quantum, tile_rows,
   dense_threshold)`` into a :class:`DispatchTable` the plan consults at
   execution; geometries the table has never seen fall back to the
   heuristic defaults (and count ``dispatch_fallbacks``).

**Bit-identity is by construction, then verified.**  Candidates are
restricted per site to strategies whose per-sample GEMM slices see the
same operand values, shapes, and strides as the baseline:

* *top-k* sites keep a fixed channel count per sample, so the grouped,
  stacked, and exact-width ragged (``kept_quantum=1``) paths are
  interchangeable — each runs the identical ``(Cout, kept*k*k) @
  (kept*k*k, OH*OW)`` slice per sample;
* sites whose baseline ran *dense* (no mask pending, or the batch-mean
  shortcut fired on an input that upstream masking already zeroed) tune
  only the dense path's tile size;
* *ragged* (adaptive) channel sites sweep ``kept_quantum`` — K-dim
  zero-padding feeds extra exact ``+0.0`` terms into the same
  summation, so every quantum is verified ``array_equal`` against the
  **exact-ragged oracle** (``kept_quantum=1``, the unpadded per-sample
  GEMM) rather than excluded structurally.

*Spatial-mask* sites get their own candidate family — the per-position
gather baseline, kept-position-bucketed ``ragged_spatial`` at several
quanta, and dense-plus-zeroing.  Cross-strategy bitwise equality is
impossible here (a padded-width bucket GEMM blocks differently from an
exact-width one), so spatial candidates are verified on three axes
instead: ``allclose`` against the per-position baseline at kept
positions, *exactly zero* at dropped positions, and per-request
**bit-identity** (the batched output ``array_equal`` the concatenation
of single-sample runs of the same candidate — the invariant serving
relies on).

Tile-size variants are pure copy blocking (``im2col`` gathers the same
values in a different order) and never change results.  On top of the
structural argument, every candidate's calibration output is verified
against its family's oracle and mismatches are rejected.

The table serializes to a versioned, JSON-safe manifest block
(:data:`DISPATCH_SCHEMA`) that :class:`repro.serve.ModelRegistry`
persists inside artifacts (SHA-256 covered) and
:class:`repro.serve.ProcPoolEngine` ships through spawn args, so tuning
survives reload and reaches every worker process.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..obs import runtime as _obs
from ..obs.metrics import global_registry
from .masks import group_by_kept_count
from .sparse_exec import (
    STACKED_PATH_MAX_POSITIONS,
    group_by_mask_signature,
    output_keep_grid,
    sparse_conv2d,
)

__all__ = [
    "DISPATCH_SCHEMA",
    "GEOMETRY_FIELDS",
    "DispatchEntry",
    "DispatchTable",
    "SiteReport",
    "TuneReport",
    "conv_geometry",
    "synthesize_calibration",
    "tune_plan",
]

#: Versioned schema tag for the serialized dispatch-table manifest block.
#: Bumped on any incompatible change; loaders reject unknown schemas
#: instead of guessing.
DISPATCH_SCHEMA = "repro.dispatch.v1"

#: Field names of the canonical conv-geometry key, in key order.  ``kind``
#: is ``"none"`` (no pending channel mask), ``"topk"`` (fixed per-sample
#: kept-count, recorded in ``kept``), or ``"ragged"`` (adaptive masks,
#: ``kept`` is ``-1``).  A pending spatial mask appends a suffix:
#: ``"+spr"`` (adaptive kept-position counts), ``"+sp<count>"`` (top-k,
#: every sample keeps the same position count).  Geometries the tuner
#: cannot classify safely (mixed kept-counts without the ragged flag —
#: ``"mixed"`` channel kinds or a ``"+spx"`` spatial suffix) are never
#: tuned — lookups miss and fall back to the heuristics.
GEOMETRY_FIELDS = (
    "in_c",
    "out_c",
    "kernel",
    "stride",
    "padding",
    "h",
    "w",
    "kind",
    "kept",
    "dtype",
)

#: Strategies a dispatch entry may name.  The last two are spatial-mask
#: strategies (kept-position bucketing and the per-sample gather
#: baseline); entries carrying them are only ever looked up for
#: geometries whose ``kind`` has a spatial suffix.
STRATEGIES = ("grouped", "stacked", "ragged", "dense", "ragged_spatial", "per_position")


def conv_geometry(
    weight: np.ndarray,
    stride: int,
    padding: int,
    h: int,
    w: int,
    kind: str,
    kept: int,
    dtype: np.dtype,
) -> Tuple:
    """Build the canonical geometry key tuple (see :data:`GEOMETRY_FIELDS`)."""
    return (
        int(weight.shape[1]),
        int(weight.shape[0]),
        int(weight.shape[2]),
        int(stride),
        int(padding),
        int(h),
        int(w),
        str(kind),
        int(kept),
        np.dtype(dtype).name,
    )


@dataclasses.dataclass(frozen=True)
class DispatchEntry:
    """The measured winner for one conv geometry.

    ``tile_rows`` is ``None`` when the default L2 heuristic tile won (the
    runtime then uses the memoized :func:`repro.nn.functional.default_tile_rows`);
    ``dense_threshold`` records the effective threshold the entry encodes
    (``1.0`` for the dense strategy — always dense — else ``0.0``: a tuned
    sparse entry never re-consults the batch-mean shortcut, keeping the
    decision batch-invariant by construction).
    """

    strategy: str
    kept_quantum: int = 1
    tile_rows: Optional[int] = None
    dense_threshold: float = 0.0
    baseline_ms: float = 0.0
    winner_ms: float = 0.0
    sites: int = 1

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.kept_quantum < 1:
            raise ValueError("kept_quantum must be >= 1")
        if self.tile_rows is not None and self.tile_rows < 1:
            raise ValueError("tile_rows must be >= 1 (or None for the heuristic)")


class DispatchTable:
    """Geometry → :class:`DispatchEntry` mapping consulted at execution.

    Lookups are plain dict gets on tuples the plan memoizes per op, so the
    hot-path cost is one hash probe.  Tables are immutable in spirit —
    built once by :func:`tune_plan` or :meth:`from_manifest` — and safe to
    share across threads and plans.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Dict[Tuple, DispatchEntry]] = None):
        self._entries: Dict[Tuple, DispatchEntry] = dict(entries or {})

    def lookup(self, geometry: Tuple) -> Optional[DispatchEntry]:
        return self._entries.get(geometry)

    def add(self, geometry: Tuple, entry: DispatchEntry) -> None:
        self._entries[geometry] = entry

    def geometries(self) -> List[Tuple]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DispatchTable):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"DispatchTable({len(self._entries)} geometries)"

    def to_manifest(self) -> Dict:
        """JSON-safe manifest block (sorted canonically for stable hashes)."""
        entries = []
        for geo in self.geometries():
            entry = self._entries[geo]
            entries.append(
                {
                    "geometry": dict(zip(GEOMETRY_FIELDS, geo)),
                    "strategy": entry.strategy,
                    "kept_quantum": entry.kept_quantum,
                    "tile_rows": entry.tile_rows,
                    "dense_threshold": entry.dense_threshold,
                    "baseline_ms": entry.baseline_ms,
                    "winner_ms": entry.winner_ms,
                    "sites": entry.sites,
                }
            )
        return {"schema": DISPATCH_SCHEMA, "entries": entries}

    @classmethod
    def from_manifest(cls, manifest: Dict) -> "DispatchTable":
        """Rebuild a table from :meth:`to_manifest` output.

        Raises ``ValueError`` on an unknown schema version — a table tuned
        under different dispatch semantics must not silently steer this
        runtime.
        """
        schema = manifest.get("schema")
        if schema != DISPATCH_SCHEMA:
            raise ValueError(
                f"unsupported dispatch schema {schema!r} (expected {DISPATCH_SCHEMA!r})"
            )
        entries: Dict[Tuple, DispatchEntry] = {}
        for row in manifest.get("entries", []):
            geo_fields = row["geometry"]
            geometry = tuple(geo_fields[name] for name in GEOMETRY_FIELDS)
            entries[geometry] = DispatchEntry(
                strategy=row["strategy"],
                kept_quantum=int(row["kept_quantum"]),
                tile_rows=None if row.get("tile_rows") is None else int(row["tile_rows"]),
                dense_threshold=float(row.get("dense_threshold", 0.0)),
                baseline_ms=float(row.get("baseline_ms", 0.0)),
                winner_ms=float(row.get("winner_ms", 0.0)),
                sites=int(row.get("sites", 1)),
            )
        return cls(entries)


@dataclasses.dataclass
class SiteReport:
    """Measurements for one unique geometry."""

    geometry: Tuple
    sites: int
    baseline_label: str
    baseline_ms: float
    measured_ms: Dict[str, float]
    winner: str
    rejected: List[str]
    entry: DispatchEntry


@dataclasses.dataclass
class TuneReport:
    """What :func:`tune_plan` did, for logs, benchmarks, and tests."""

    table: DispatchTable
    sites: int
    unique_geometries: int
    duplicates_skipped: int
    skipped_untunable: int
    reports: List[SiteReport]

    @property
    def rejected_total(self) -> int:
        return sum(len(r.rejected) for r in self.reports)


# ----------------------------------------------------------------------
# Calibration input synthesis
# ----------------------------------------------------------------------
def _first_conv(plan) -> Optional[object]:
    stem = getattr(plan, "stem", None)
    if stem is not None:
        return stem
    for op in getattr(plan, "ops", []):
        if hasattr(op, "weight") and getattr(op, "stride", None) is not None:
            return op
    return None


def synthesize_calibration(
    plan,
    batch: int = 8,
    image_size: int = 32,
    seed: int = 0,
) -> np.ndarray:
    """A synthetic NCHW calibration batch matching the plan's input width.

    Standard-normal activations exercise every strategy the way real
    traffic does (top-k and threshold masks both key off activation
    magnitude); callers with representative data should pass it to
    :func:`tune_plan` directly instead.
    """
    conv = _first_conv(plan)
    if conv is None:
        raise ValueError("plan has no convolution to calibrate against")
    in_c = int(conv.weight.shape[1])
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, in_c, image_size, image_size)).astype(np.float32)


# ----------------------------------------------------------------------
# The tuner
# ----------------------------------------------------------------------
def _best_of(fn: Callable[[], np.ndarray], repeats: int) -> float:
    """Best-of-N wall time in milliseconds (noise-robust: min, not mean)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best * 1000.0


def _run_dense(op, x: np.ndarray, plan, tile_rows: Optional[int]) -> np.ndarray:
    """The plan's dense fast path, as a standalone candidate runner."""
    n, c = x.shape[:2]
    oh, ow = op.output_shape(x.shape[2], x.shape[3])
    k = op.weight.shape[2]
    out_c = op.weight.shape[0]
    arena = plan.arena
    col = F.im2col_t(
        x, k, op.stride, op.padding,
        out=arena.take("im2col", (n, c * k * k, oh * ow), x.dtype),
        tile_rows=tile_rows
        if tile_rows is not None
        else F.default_tile_rows(c, k, ow, x.dtype.itemsize),
    )
    out = np.empty((n, out_c, oh, ow), dtype=x.dtype)
    np.matmul(op.weight.reshape(out_c, -1), col, out=out.reshape(n, out_c, oh * ow))
    if op.bias is not None:
        out += op.bias.reshape(1, out_c, 1, 1)
    return out


def _run_sparse(
    op,
    x: np.ndarray,
    mask: Optional[np.ndarray],
    plan,
    strategy: str,
    kept_quantum: int,
    tile_rows: Optional[int],
    spatial: Optional[np.ndarray] = None,
) -> np.ndarray:
    out = sparse_conv2d(
        x,
        op.weight,
        op.bias,
        op.stride,
        op.padding,
        channel_mask=mask,
        spatial_mask=spatial,
        cache=plan.cache,
        cache_key=op.key,
        batch_invariant=plan.config.batch_invariant,
        arena=plan.arena,
        ragged=strategy == "ragged",
        kept_quantum=kept_quantum,
        strategy=strategy,
        tile_rows=tile_rows,
    )
    return out


def _stacked_eligible(mask: np.ndarray) -> bool:
    """Can the stacked equal-kept-count path actually engage for ``mask``?"""
    groups = list(group_by_mask_signature(mask))
    if len(groups) <= 1:
        return False
    counts = mask.sum(axis=1)
    kept = int(counts[0])
    return kept > 0 and int(counts.min()) == int(counts.max())


def _classify(
    op,
    x: np.ndarray,
    mask: Optional[np.ndarray],
    spatial: Optional[np.ndarray],
    ragged: bool,
    config,
):
    """Geometry kind + the label the *untuned* heuristics would dispatch.

    Mirrors ``_ConvOp.geometry`` (kind string, spatial suffixes included)
    and ``_ConvOp.run``'s untuned shortcuts, so tuned entries land on
    exactly the keys the runtime will probe.
    """
    oh, ow = op.output_shape(x.shape[2], x.shape[3])
    if mask is None:
        kind, kept, label = "none", -1, "dense"
    elif ragged:
        kind, kept, label = "ragged", -1, "ragged"
    else:
        counts = mask.sum(axis=1)
        if int(counts.min()) != int(counts.max()):
            kind, kept, label = "mixed", -1, "grouped"
        else:
            kept = int(counts[0])
            if 1.0 - float(mask.mean()) < config.dense_threshold:
                kind, label = "topk", "dense"
            elif oh * ow <= STACKED_PATH_MAX_POSITIONS and _stacked_eligible(mask):
                kind, label = "topk", "stacked"
            else:
                kind, label = "topk", "grouped"
    if spatial is None:
        return kind, kept, label
    if ragged:
        return kind + "+spr", kept, "ragged_spatial"
    sp_counts = spatial.reshape(spatial.shape[0], -1).sum(axis=1)
    smn, smx = int(sp_counts.min()), int(sp_counts.max())
    if smn != smx:
        return kind + "+spx", kept, "per_position"
    keep2d = output_keep_grid(np.asarray(spatial, dtype=bool), op.stride, oh, ow)
    if 1.0 - float(keep2d.mean()) < config.dense_threshold:
        return kind + f"+sp{smn}", kept, "dense"
    return kind + f"+sp{smn}", kept, "per_position"


def _tile_variants(base: int) -> List[int]:
    """Tile-row candidates bracketing the L2 heuristic (dedup'd, >0)."""
    variants = []
    for tile in (max(1, base // 2), base * 2, base * 4):
        if tile != base and tile not in variants:
            variants.append(tile)
    return variants


def _ragged_tile_base(mask: np.ndarray, op, ow: int, quantum: int, itemsize: int) -> int:
    """Representative default tile for the ragged path (widest bucket)."""
    buckets = group_by_kept_count(np.asarray(mask, dtype=bool), quantum)
    widths = [count for count, _ in buckets if count > 0]
    width = max(widths) if widths else int(op.weight.shape[1])
    return F.default_tile_rows(width, op.weight.shape[2], ow, itemsize)


def tune_plan(
    plan,
    calibration: np.ndarray,
    *,
    repeats: int = 3,
    tune_tiles: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> TuneReport:
    """Measure, verify, and bake a dispatch table into ``plan``.

    Runs ``calibration`` through the untuned plan once with site capture
    enabled, dedupes the captured conv sites by canonical geometry, then
    per unique geometry times every candidate (best-of-``repeats``),
    verifies each candidate's output against its family's oracle
    (``array_equal`` for channel families — the exact-ragged quantum-1
    run for adaptive sites — and the allclose/exact-zero/bit-identity
    triple for spatial families), and installs the winning entries as
    ``plan.dispatch``.  Returns a :class:`TuneReport`; the
    plan's dispatch/stat counters are reset afterwards so calibration
    traffic never pollutes serving telemetry.
    """
    emit = log if log is not None else (lambda msg: None)
    config = plan.config
    tune_start = perf_counter()

    # --- capture pass: one untuned forward recording every conv site ---
    saved_dispatch = plan.dispatch
    plan.dispatch = None
    plan.capture = []
    try:
        plan.run(np.ascontiguousarray(calibration))
        records = plan.capture
    finally:
        plan.capture = None
        plan.dispatch = saved_dispatch

    # --- geometry dedup (satellite: repeated layers measure once) ---
    unique: Dict[Tuple, Dict] = {}
    duplicates = 0
    skipped = 0
    for op, x, mask, spatial, ragged in records:
        kind, kept, baseline_label = _classify(op, x, mask, spatial, ragged, config)
        if kind.startswith("mixed") or kind.endswith("+spx"):
            skipped += 1  # unclassifiable: heuristics stay in charge
            continue
        geo = conv_geometry(
            op.weight, op.stride, op.padding, x.shape[2], x.shape[3], kind, kept, x.dtype
        )
        if geo in unique:
            unique[geo]["sites"] += 1
            duplicates += 1
        else:
            unique[geo] = {
                "op": op,
                "x": x,
                "mask": mask,
                "spatial": spatial,
                "ragged": ragged,
                "kind": kind,
                "baseline": baseline_label,
                "sites": 1,
            }
    emit(
        f"tune-dispatch: {len(records)} conv sites -> {len(unique)} unique geometries "
        f"({duplicates} duplicates skipped, {skipped} untunable)"
    )

    # --- per-geometry measurement ---
    table = DispatchTable()
    reports: List[SiteReport] = []
    for geo, site in unique.items():
        op, x, mask = site["op"], site["x"], site["mask"]
        spatial, ragged_site = site["spatial"], site["ragged"]
        kind, baseline_label = site["kind"], site["baseline"]
        oh, ow = op.output_shape(x.shape[2], x.shape[3])
        itemsize = x.dtype.itemsize
        quantum = config.kept_quantum
        n = int(x.shape[0])

        # Candidate runners: label -> (strategy, kept_quantum, thunk).
        # Thunks take (tile, sl) — ``sl`` sub-batch slicing exists for the
        # spatial family's per-request bit-identity verification.
        candidates: List[Tuple[str, str, int, Callable]] = []
        oracle: Optional[np.ndarray] = None

        if spatial is not None:
            # Spatial family: the per-sample gather baseline, kept-position
            # bucketing at several quanta, and dense-plus-zeroing.  No two
            # of these are bitwise interchangeable (GEMM width changes the
            # blocking), so verification is allclose-at-kept + exact-zero-
            # at-dropped + per-request bit-identity instead of array_equal.
            spatial_b = np.asarray(spatial, dtype=bool)
            keep_full = output_keep_grid(spatial_b, op.stride, oh, ow)
            positions = oh * ow
            mask_eff = mask
            if (
                mask is not None
                and not ragged_site
                and 1.0 - float(mask.mean()) < config.dense_threshold
            ):
                mask_eff = None  # the untuned run nulls the channel mask too

            def spatial_runner(strategy, kq, op=op, x=x, mask_eff=mask_eff,
                               spatial_b=spatial_b, keep_full=keep_full):
                def run(tile, sl=slice(None)):
                    xs = x[sl]
                    ms = None if mask_eff is None else mask_eff[sl]
                    if strategy == "dense":
                        out = _run_dense(op, xs, plan, tile)
                        return out * keep_full[sl][:, None, :, :]
                    return _run_sparse(
                        op, xs, ms, plan, strategy, kq, tile, spatial=spatial_b[sl]
                    )
                return run

            candidates.append(
                ("per_position", "per_position", 1, spatial_runner("per_position", 1))
            )
            # The executor's effective quantum is max(kept_quantum,
            # ceil(positions/32)); sweep coarser granularities around that
            # floor, deduped by effective value.
            floor = -(-positions // 32)
            seen_eff = {max(quantum, floor)}
            candidates.append(
                ("ragged_spatial", "ragged_spatial", quantum,
                 spatial_runner("ragged_spatial", quantum))
            )
            for q in (1, -(-positions // 16), -(-positions // 8)):
                eff = max(int(q), floor)
                if eff in seen_eff:
                    continue
                seen_eff.add(eff)
                candidates.append(
                    (f"ragged_spatial@q{q}", "ragged_spatial", int(q),
                     spatial_runner("ragged_spatial", int(q)))
                )
            candidates.append(("dense", "dense", 1, spatial_runner("dense", 1)))
            tile_base = F.default_tile_rows(x.shape[1], op.weight.shape[2], ow, itemsize)

            dropped = np.broadcast_to(
                ~keep_full[:, None], (n, int(op.weight.shape[0]), oh, ow)
            )

            def check(out, run, strategy, dropped=dropped):
                if not np.allclose(out, oracle, rtol=1e-4, atol=1e-5):
                    return False
                if out[dropped].any():
                    return False
                if strategy == "per_position" and not config.batch_invariant:
                    # The flat-GEMM baseline never promised invariance.
                    return True
                solo = np.concatenate([run(None, slice(i, i + 1)) for i in range(n)])
                return np.array_equal(out, solo)

            # The per-sample gather path IS the kept-position oracle.
            oracle = candidates[0][3](None)
        else:
            if baseline_label == "dense":
                # No mask pending, or upstream masking already zeroed the
                # input and the shortcut fired: only the dense path is exact.
                candidates.append(
                    ("dense", "dense", 1,
                     lambda tile, sl=None, op=op, x=x: _run_dense(op, x, plan, tile))
                )
                tile_base = F.default_tile_rows(x.shape[1], op.weight.shape[2], ow, itemsize)
            elif kind == "ragged":
                # Adaptive masks: sweep the bucket quantum.  K-dim zero
                # padding feeds exact +0.0 terms into the same summation, so
                # every quantum must be array_equal to the exact-ragged
                # (quantum=1) oracle — verified, not assumed.
                def ragged_runner(q, op=op, x=x, m=mask):
                    def run(tile, sl=None):
                        return _run_sparse(op, x, m, plan, "ragged", q, tile)
                    return run

                candidates.append(("ragged", "ragged", quantum, ragged_runner(quantum)))
                for q in (1, 2, 4, 8):
                    if q == quantum:
                        continue
                    candidates.append((f"ragged@q{q}", "ragged", q, ragged_runner(q)))
                tile_base = _ragged_tile_base(mask, op, ow, quantum, itemsize)
                oracle = ragged_runner(1)(None)
            else:  # top-k: the structurally interchangeable family
                kept = int(geo[GEOMETRY_FIELDS.index("kept")])
                candidates.append(
                    (
                        "grouped",
                        "grouped",
                        quantum,
                        lambda tile, sl=None, op=op, x=x, m=mask: _run_sparse(
                            op, x, m, plan, "grouped", quantum, tile
                        ),
                    )
                )
                if _stacked_eligible(mask):
                    candidates.append(
                        (
                            "stacked",
                            "stacked",
                            quantum,
                            lambda tile, sl=None, op=op, x=x, m=mask: _run_sparse(
                                op, x, m, plan, "stacked", quantum, tile
                            ),
                        )
                    )
                candidates.append(
                    (
                        "ragged_exact",
                        "ragged",
                        1,
                        lambda tile, sl=None, op=op, x=x, m=mask: _run_sparse(
                            op, x, m, plan, "ragged", 1, tile
                        ),
                    )
                )
                tile_base = F.default_tile_rows(max(1, kept), op.weight.shape[2], ow, itemsize)

            def check(out, run, strategy):
                return np.array_equal(out, oracle)

        # Verification reference: family oracle if one was computed, else
        # the baseline output (what the untuned plan computes).
        if oracle is None:
            baseline_runner = next(
                run for label, _, _, run in candidates if label == baseline_label
            )
            oracle = baseline_runner(None)

        measured: Dict[str, float] = {}
        rejected: List[str] = []
        runners: Dict[str, Tuple[str, int, Callable]] = {}
        for label, strategy, kq, run in candidates:
            out = run(None)  # warm-up doubles as the verification output
            if not check(out, run, strategy):
                rejected.append(label)
                continue
            measured[label] = _best_of(lambda run=run: run(None), repeats)
            runners[label] = (strategy, kq, run)

        winner_label = min(measured, key=measured.get)
        winner_strategy, winner_kq, winner_run = runners[winner_label]
        winner_ms = measured[winner_label]
        baseline_ms = measured.get(baseline_label, winner_ms)

        # Phase 2: tile-rows sweep on the winner (pure copy blocking; the
        # stacked path does not tile its single gather, and the two spatial
        # sparse paths never consult tile_rows, so they are skipped).
        winner_tile: Optional[int] = None
        if tune_tiles and winner_strategy not in (
            "stacked", "ragged_spatial", "per_position"
        ):
            for tile in _tile_variants(tile_base):
                out = winner_run(tile)
                if not check(out, winner_run, winner_strategy):
                    rejected.append(f"{winner_label}@tile{tile}")
                    continue
                ms = _best_of(lambda run=winner_run, t=tile: run(t), repeats)
                measured[f"{winner_label}@tile{tile}"] = ms
                if ms < winner_ms:
                    winner_ms = ms
                    winner_tile = tile

        entry = DispatchEntry(
            strategy=winner_strategy,
            kept_quantum=winner_kq,
            tile_rows=winner_tile,
            dense_threshold=1.0 if winner_strategy == "dense" else 0.0,
            baseline_ms=baseline_ms,
            winner_ms=winner_ms,
            sites=site["sites"],
        )
        table.add(geo, entry)
        reports.append(
            SiteReport(
                geometry=geo,
                sites=site["sites"],
                baseline_label=baseline_label,
                baseline_ms=baseline_ms,
                measured_ms=measured,
                winner=winner_label if winner_tile is None else f"{winner_label}@tile{winner_tile}",
                rejected=rejected,
                entry=entry,
            )
        )
        emit(
            f"  {geo[0]}x{geo[5]}x{geo[6]} k{geo[2]} {geo[7]}"
            f" -> {reports[-1].winner} {winner_ms:.3f}ms"
            f" (baseline {baseline_label} {baseline_ms:.3f}ms, sites={site['sites']})"
        )

    plan.dispatch = table
    plan.reset_stats()

    tune_end = perf_counter()
    metrics = global_registry()
    metrics.counter(
        "repro_tune_runs_total", help="Completed tune_plan invocations."
    ).inc()
    metrics.counter(
        "repro_tune_geometries_total",
        help="Unique conv geometries measured by the tuner.",
    ).inc(len(unique))
    metrics.histogram(
        "repro_tune_seconds", help="Wall time of tune_plan runs."
    ).observe(tune_end - tune_start)
    if _obs.enabled:
        tracer = _obs.tracer()
        ctx = _obs.current()
        if tracer is not None and ctx is not None:
            tracer.emit_child(
                ctx,
                "tune_plan",
                tune_start,
                tune_end,
                {
                    "sites": len(records),
                    "geometries": len(unique),
                    "duplicates": duplicates,
                    "untunable": skipped,
                },
            )

    return TuneReport(
        table=table,
        sites=len(records),
        unique_geometries=len(unique),
        duplicates_skipped=duplicates,
        skipped_untunable=skipped,
        reports=reports,
    )
