"""Table I regeneration: FLOPs reduction vs accuracy for every 'Proposed' row.

For each of the paper's six settings this benchmark runs the full pipeline
(pretrain → TTD ratio ascent → dynamic-pruned evaluation), projects the
measured mask statistics onto the paper's full-size architecture, and prints
the paper-reported vs measured FLOPs-reduction side by side.

What must reproduce (and is asserted):

* the projected full-scale FLOPs reduction lands near the paper's number —
  it is architecture arithmetic driven by the same ratio vectors;
* the dynamically-pruned model stays far above chance (TTD works);
* the measured benchmark time is the *pruned* inference pass.

Absolute accuracies are not comparable (synthetic data, slim width); see
EXPERIMENTS.md.
"""

import pytest

from repro.analysis.experiments import TABLE1_SETTINGS, run_table1_setting
from repro.core.training import evaluate
from repro.datasets import make_loaders

# Budget per setting, tuned for CPU: pretrain + coarse ascent + final stage.
RUN_KWARGS = dict(pretrain_epochs=5, ttd_epochs_per_stage=1, ttd_final_epochs=6, ttd_step=0.3)

# Tolerance on the projected FLOPs-reduction vs the paper's number.  Channel
# arithmetic is exact; spatial keep fractions are measured (mask-pattern
# dependent), so spatial-heavy settings get the wider margin.
TOLERANCE_PCT = {
    "vgg16_cifar10": 4.0,
    "resnet56_cifar10": 6.0,
    "vgg16_cifar100_s1": 4.0,
    "vgg16_cifar100_s2": 4.0,
    "vgg16_imagenet100_s1": 8.0,
    "vgg16_imagenet100_s2": 8.0,
}


@pytest.mark.parametrize("key", list(TABLE1_SETTINGS))
def test_table1_row(benchmark, key):
    outcome = run_table1_setting(key, **RUN_KWARGS)
    setting = outcome.setting

    # Benchmark the dynamically-pruned inference pass (the paper's runtime
    # object); training is setup, not measurement.
    _, test_loader = make_loaders(setting.dataset(), batch_size=32, seed=1)
    handle = outcome.instrumented

    benchmark.pedantic(
        lambda: evaluate(handle.model, test_loader), rounds=1, iterations=1
    )

    chance = 1.0 / setting.dataset().spec.num_classes

    print(f"\n[{setting.name}]")
    print(f"  ratios: ch={list(setting.channel_ratios)} sp={list(setting.spatial_ratios)}")
    print(
        f"  FLOPs reduction: paper {setting.paper_reduction_pct:.1f}% | "
        f"projected full-scale {outcome.full_scale_reduction_pct:.1f}% | "
        f"harness {outcome.harness_reduction_pct:.1f}%"
    )
    print(
        f"  composition: channel {outcome.full_scale_channel_pct:.1f}% + "
        f"spatial {outcome.full_scale_spatial_pct:.1f}%"
    )
    print(
        f"  accuracy: baseline {outcome.baseline_accuracy:.3f} -> "
        f"pruned {outcome.pruned_accuracy:.3f} (chance {chance:.2f})"
    )

    tolerance = TOLERANCE_PCT[key]
    assert outcome.full_scale_reduction_pct == pytest.approx(
        setting.paper_reduction_pct, abs=tolerance
    ), f"projected reduction deviates more than {tolerance} points from the paper"
    assert outcome.pruned_accuracy > 2.5 * chance, "TTD failed to preserve pruned accuracy"
    assert outcome.baseline_accuracy > outcome.pruned_accuracy - 0.05  # pruning never helps much
