"""Dynamic-method comparison: AntiDote vs FBS-style gates vs soft attention.

The paper positions AntiDote against prior dynamic channel pruning (runtime
neural pruning [12], FBS [13]) and against soft attention (SENET [10]).
This benchmark runs all three on the same trained slim VGG16:

* **AntiDote**: training-free attention criterion + TTD, channel+(no)spatial;
* **FBS-style**: learned per-layer saliency gates trained jointly;
* **SENET soft attention**: sigmoid re-weighting — quality reference that
  saves zero FLOPs (the Sec. III-A argument for binarization).

Asserted shape: both pruning methods reach the same analytic FLOPs
reduction; AntiDote's accuracy is competitive with the learned gates
(within a few points) without any gate parameters.
"""

import pytest

from repro.baselines.dynamic import instrument_with_gates
from repro.core.masks import reserved_count
from repro.core.pruning import PruningConfig, instrument_model
from repro.core.training import evaluate, train_epoch
from repro.core.ttd import RatioAscentSchedule, TTDTrainer
from repro.nn.optim import SGD

from .bench_utils import load_vgg

RATIOS = [0.2, 0.2, 0.5, 0.7, 0.7]
ZEROS = [0.0] * 5
ADAPT_EPOCHS = 8


def run_antidote(state, train_loader, test_loader):
    model = load_vgg(state)
    handle = instrument_model(model, PruningConfig.disabled(5))
    trainer = TTDTrainer(
        handle, train_loader, test_loader,
        RatioAscentSchedule(RATIOS, warmup=0.2, step=0.25),
        RatioAscentSchedule(ZEROS, warmup=0.2, step=0.25),
        epochs_per_stage=1, final_stage_epochs=ADAPT_EPOCHS - 2, lr=0.02,
    )
    trainer.train()
    handle.set_block_ratios(RATIOS, ZEROS)
    return evaluate(model, test_loader).accuracy


def run_fbs(state, train_loader, test_loader):
    model = load_vgg(state)
    gated = instrument_with_gates(model, RATIOS)
    optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9, weight_decay=5e-4)
    for _ in range(ADAPT_EPOCHS):
        train_epoch(model, train_loader, optimizer)
    return evaluate(model, test_loader).accuracy


def run_soft_attention(state, train_loader, test_loader):
    # Soft attention re-weights but removes nothing (FLOPs stay at 100%).
    # Like FBS, the gates are learned, so the SE-augmented model gets the
    # same adaptation budget before evaluation.
    from repro.baselines.dynamic import SEBlock
    from repro.nn import Sequential

    model = load_vgg(state)
    for i, point in enumerate(model.pruning_points()):
        site = model.get_submodule(point.path)
        model.set_submodule(point.path, Sequential(site, SEBlock(point.out_channels, seed=i)))
    optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9, weight_decay=5e-4)
    for _ in range(ADAPT_EPOCHS):
        train_epoch(model, train_loader, optimizer)
    return evaluate(model, test_loader).accuracy


def test_dynamic_method_comparison(benchmark, cifar_loaders, trained_vgg_state):
    train_loader, test_loader = cifar_loaders

    results = benchmark.pedantic(
        lambda: {
            "antidote": run_antidote(trained_vgg_state, train_loader, test_loader),
            "fbs": run_fbs(trained_vgg_state, train_loader, test_loader),
            "soft-se": run_soft_attention(trained_vgg_state, train_loader, test_loader),
        },
        rounds=1,
        iterations=1,
    )

    print("\n[dynamic methods at channel ratios", RATIOS, "]")
    print(f"  AntiDote (attention + TTD): acc {results['antidote']:.3f}, FLOPs pruned")
    print(f"  FBS-style learned gates:    acc {results['fbs']:.3f}, FLOPs pruned")
    print(f"  SENET soft attention:       acc {results['soft-se']:.3f}, FLOPs = 100% (no removal)")

    chance = 0.1
    assert results["antidote"] > 3 * chance
    assert results["fbs"] > 2 * chance
    # Soft attention removes nothing, so with adaptation it should sit at
    # or above the pruning methods — quality ceiling, zero savings.
    assert results["soft-se"] > 3 * chance
    # AntiDote needs no learned gate parameters yet stays competitive.
    assert results["antidote"] >= results["fbs"] - 0.10


def test_fbs_and_antidote_same_flops_arithmetic(benchmark, cifar_loaders, trained_vgg_state):
    # Both use Eq. 3 keep counts, so their per-layer channel keep fractions
    # are identical by construction.
    _, test_loader = cifar_loaders
    model_a = load_vgg(trained_vgg_state)
    handle = instrument_model(model_a, PruningConfig(RATIOS, ZEROS))
    model_b = load_vgg(trained_vgg_state)
    gated = instrument_with_gates(model_b, RATIOS)
    benchmark.pedantic(lambda: evaluate(model_a, test_loader), rounds=1, iterations=1)
    evaluate(model_b, test_loader)
    for (pa, pruner), (pb, gate) in zip(handle.pruners, gated.gates):
        assert pa.path == pb.path
        assert pruner.mean_channel_keep == pytest.approx(gate.mean_channel_keep)
        expected = reserved_count(pa.out_channels, RATIOS[pa.block_index]) / pa.out_channels
        assert pruner.mean_channel_keep == pytest.approx(expected)
