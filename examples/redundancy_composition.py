#!/usr/bin/env python3
"""Where does feature-map redundancy live? (the paper's Fig. 4 workflow).

Sec. V-C: on CIFAR-scale inputs (32px) VGG's redundancy is almost entirely
channel-wise, while at ImageNet scale (large spatial maps) it is mostly
spatial; ResNet56 shows a balanced mix.  This example runs the paper's
Table I ratio settings on synthetic stand-ins for each dataset and prints
the measured channel/spatial decomposition of the removed FLOPs.
"""

from repro.analysis.experiments import TABLE1_SETTINGS, run_table1_setting


def bar(pct: float, scale: float = 0.5) -> str:
    return "#" * int(pct * scale)


def main() -> None:
    keys = [
        ("vgg16_cifar10", "VGG16-CIFAR10  (32px, channel-only setting)"),
        ("resnet56_cifar10", "ResNet56-CIFAR10 (mixed setting)"),
        ("vgg16_imagenet100_s2", "VGG16-ImageNet100 (64px, spatial-heavy setting)"),
    ]
    print("running the three redundancy regimes (a few minutes on CPU)...\n")
    print(f"{'setting':<45} {'channel%':>9} {'spatial%':>9} {'total%':>8}")
    for key, label in keys:
        outcome = run_table1_setting(
            key, pretrain_epochs=4, ttd_epochs_per_stage=1, ttd_final_epochs=4, ttd_step=0.3
        )
        ch = outcome.full_scale_channel_pct
        sp = outcome.full_scale_spatial_pct
        print(f"{label:<45} {ch:>9.1f} {sp:>9.1f} {ch + sp:>8.1f}")
        print(f"{'':<45} ch |{bar(ch)}")
        print(f"{'':<45} sp |{bar(sp)}")
    print(
        "\nAs in Fig. 4: the redundancy dimension flips with input scale —"
        " channel-dominated at CIFAR resolution, spatial-dominated at"
        " ImageNet resolution, mixed on ResNet."
    )


if __name__ == "__main__":
    main()
