"""Image transforms reproducing the paper's CIFAR augmentation pipeline.

Sec. V-A: "we use the similar data augmentation including random horizontal
flip, random crop and 4-pixel padding".  Transforms operate on single CHW
float arrays and are composed with :class:`Compose`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

__all__ = [
    "Compose",
    "RandomHorizontalFlip",
    "RandomCrop",
    "Normalize",
]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image


class RandomHorizontalFlip:
    """Flip the width axis with probability ``p``."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError("flip probability must be in [0, 1]")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class RandomCrop:
    """Pad by ``padding`` pixels then crop back to the original size.

    With the paper's CIFAR setting (crop 32, padding 4) this is the standard
    translation augmentation.
    """

    def __init__(self, size: int, padding: int = 4, seed: Optional[int] = None):
        if size <= 0 or padding < 0:
            raise ValueError("invalid crop size/padding")
        self.size = size
        self.padding = padding
        self._rng = np.random.default_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        c, h, w = image.shape
        if self.padding:
            image = np.pad(
                image,
                ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
            )
        max_y = image.shape[1] - self.size
        max_x = image.shape[2] - self.size
        if max_y < 0 or max_x < 0:
            raise ValueError(f"crop size {self.size} larger than padded image {image.shape[1:]}")
        y = int(self._rng.integers(0, max_y + 1))
        x = int(self._rng.integers(0, max_x + 1))
        return np.ascontiguousarray(image[:, y : y + self.size, x : x + self.size])


class Normalize:
    """Per-channel standardization ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)
        if np.any(self.std == 0):
            raise ValueError("std must be non-zero")

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return (image - self.mean) / self.std
