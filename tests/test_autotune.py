"""Unit tests for the greedy per-block ratio search."""

import pytest

from repro.core.autotune import AutotuneResult, greedy_ratio_search
from repro.core.pruning import PruningConfig, instrument_model
from repro.core.training import fit
from repro.models import VGG


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    from repro.nn.data import DataLoader

    train, test = tiny_dataset.splits()
    train_loader = DataLoader(train, batch_size=16, shuffle=True, seed=3)
    test_loader = DataLoader(test, batch_size=16)
    model = VGG(num_classes=4, width_multiplier=0.1, seed=0)
    fit(model, train_loader, epochs=6, lr=0.05)
    handle = instrument_model(model, PruningConfig.disabled(model.num_blocks))
    return handle, test_loader


class TestValidation:
    def test_bad_dimension(self, trained):
        handle, loader = trained
        with pytest.raises(ValueError):
            greedy_ratio_search(handle, loader, (3, 32, 32), 10, 0.1, dimension="depth")

    def test_bad_step(self, trained):
        handle, loader = trained
        with pytest.raises(ValueError):
            greedy_ratio_search(handle, loader, (3, 32, 32), 10, 0.1, step=0.0)

    def test_bad_drop(self, trained):
        handle, loader = trained
        with pytest.raises(ValueError):
            greedy_ratio_search(handle, loader, (3, 32, 32), 10, -0.5)


class TestSearch:
    def test_reaches_modest_target(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=10.0, max_drop=0.3, step=0.2,
        )
        assert isinstance(result, AutotuneResult)
        assert result.target_reached
        assert result.reduction_pct >= 10.0
        assert result.accuracy >= result.baseline_accuracy - 0.3 - 1e-9

    def test_history_is_monotone_in_reduction(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=15.0, max_drop=0.4, step=0.2,
        )
        reductions = [step.reduction_pct for step in result.history]
        assert reductions == sorted(reductions)
        assert len(result.history) >= 1

    def test_zero_budget_yields_conservative_vector(self, trained):
        # With a tiny accuracy budget the search must stop early rather
        # than violate the floor.
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=60.0, max_drop=0.0, step=0.3,
        )
        assert result.accuracy >= result.baseline_accuracy - 1e-9
        if not result.target_reached:
            assert result.reduction_pct < 60.0

    def test_ratios_respect_ceiling(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=40.0, max_drop=0.5, step=0.25, max_ratio=0.5,
        )
        assert all(r <= 0.5 + 1e-9 for r in result.ratios)

    def test_handle_left_at_found_vector(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=8.0, max_drop=0.3, step=0.2,
        )
        for point, pruner in handle.pruners:
            assert pruner.channel_ratio == pytest.approx(result.ratios[point.block_index])

    def test_spatial_dimension_search(self, trained):
        handle, loader = trained
        result = greedy_ratio_search(
            handle, loader, (3, 32, 32),
            target_reduction_pct=5.0, max_drop=0.4, step=0.3, dimension="spatial",
        )
        for point, pruner in handle.pruners:
            assert pruner.spatial_ratio == pytest.approx(result.ratios[point.block_index])
            assert pruner.channel_ratio == 0.0
